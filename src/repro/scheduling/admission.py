"""Admission control for a streaming server.

A server admits a new stream only if the resulting population is still
schedulable: the device keeps bandwidth slack (Theorems 1-4) and the
total DRAM buffer stays within the installed memory.  This module wraps
the analytical feasibility checks behind the interface an operator
would actually call, and is used by the server simulation and the
examples.

All solves go through the unified planning layer: the controller builds
a :class:`repro.planner.Configuration` for its current demand model and
asks a shared (or injected) :class:`repro.planner.Planner`, so repeated
capacity queries — e.g. the runtime's per-interval Erlang-B gauge —
are memoized rather than re-bisected.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cache_model import CachePolicy
from repro.core.parameters import SystemParameters
from repro.core.popularity import PopularityDistribution
from repro.errors import (
    AdmissionError,
    CapacityError,
    ConfigurationError,
)
from repro.planner.configuration import Configuration
from repro.planner.search import DEFAULT_INT_LIMIT
from repro.planner.solver import Planner, default_planner


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of an admission test."""

    admitted: bool
    #: Stream population if admitted (current + 1).
    n_streams: float
    #: Total DRAM the admitted population would need, bytes (None when
    #: the rejection was a bandwidth/capacity failure).
    dram_required: float | None
    #: Human-readable reason for a rejection (None when admitted).
    reason: str | None = None


class AdmissionController:
    """Tracks the admitted population for one server configuration.

    ``configuration`` is ``"none"`` (plain disk-to-DRAM), ``"buffer"``
    (MEMS buffer, Theorem 2), or ``"cache"`` (MEMS cache, Theorems 3/4,
    which also needs ``policy`` and ``popularity``).  Demand models
    without a legacy string — the prefix mode of :mod:`repro.vod` —
    are passed directly as a planner ``spec``
    (:class:`repro.planner.Configuration`); ``spec`` and the legacy
    fields are mutually exclusive.  In prefix mode the admitted unit is
    an *IO stream*, not a session: the runtime calls :meth:`try_admit`
    only when an arrival opens a new shared stream, and batched joins
    ride for free.  ``planner`` injects a specific
    :class:`repro.planner.Planner` (e.g. the online runtime's, so its
    cache counters cover admission solves); by default the process-wide
    shared planner is used.
    """

    def __init__(self, params: SystemParameters, dram_budget: float, *,
                 configuration: str = "none",
                 policy: CachePolicy | None = None,
                 popularity: PopularityDistribution | None = None,
                 spec: Configuration | None = None,
                 planner: Planner | None = None) -> None:
        if dram_budget < 0:
            raise ConfigurationError(
                f"dram_budget must be >= 0, got {dram_budget!r}")
        if spec is not None:
            if configuration != "none" or policy is not None \
                    or popularity is not None:
                raise ConfigurationError(
                    "pass either spec= or the legacy configuration "
                    "fields, not both")
        else:
            self._check_configuration(configuration, policy, popularity)
        self._params = params.replace(n_streams=0)
        self._dram_budget = dram_budget
        self._spec = spec
        self._configuration = (configuration if spec is None
                               else spec.kind.value)
        self._policy = policy if spec is None else spec.policy
        self._popularity = popularity if spec is None else spec.popularity
        self._planner = planner if planner is not None else default_planner()
        self._admitted = 0
        #: Capacity threshold under the current model (default ``limit``),
        #: or None when the model changed since it was last solved.
        self._capacity_value: int | None = None
        #: Last solved capacity, kept across :meth:`reconfigure` as the
        #: warm-start hint — the model rarely moves far in one step.
        self._capacity_hint: int | None = None
        #: Parked hints, keyed by demand-model kind: a reconfigure that
        #: swaps the model kind (cache -> none after a failure, say)
        #: re-keys the hint instead of seeding the new model's search
        #: with the old model's capacity.
        self._capacity_hints: dict[str, int] = {}
        #: DRAM demand per population under the current model.  The
        #: admission hot path asks for the same handful of populations
        #: over and over (the count oscillates around capacity), so a
        #: local dict answers repeats without re-keying the planner
        #: cache.  Cleared on every :meth:`reconfigure`.
        self._dram_memo: dict[float, float] = {}
        #: Finalized *rejections* per candidate population.  A rejection
        #: leaves the controller untouched and its decision (including
        #: the formatted reason string) is a pure function of the
        #: candidate and the demand model, so an overloaded arrival
        #: storm replays one frozen decision instead of re-deriving it
        #: per arrival.  Cleared on every :meth:`reconfigure`.
        self._reject_memo: dict[int, AdmissionDecision] = {}
        #: The planner spelling of the legacy demand model, built once
        #: per model (cleared on :meth:`reconfigure`).
        self._spec_value: Configuration | None = None

    @staticmethod
    def _check_configuration(configuration: str,
                             policy: CachePolicy | None,
                             popularity: PopularityDistribution | None) -> None:
        if configuration not in ("none", "buffer", "cache"):
            raise ConfigurationError(
                f"configuration must be 'none', 'buffer' or 'cache', "
                f"got {configuration!r}")
        if configuration == "cache" and (policy is None or popularity is None):
            raise ConfigurationError(
                "cache configuration needs policy and popularity")

    @property
    def admitted_streams(self) -> int:
        """Streams currently admitted."""
        return self._admitted

    @property
    def dram_budget(self) -> float:
        """Installed DRAM in bytes."""
        return self._dram_budget

    @property
    def configuration(self) -> str:
        """Active configuration name: a legacy string, or the spec's
        kind value (e.g. ``'prefix'``) when running on a spec."""
        return self._configuration

    @property
    def planner(self) -> Planner:
        """The planner answering this controller's solves."""
        return self._planner

    def _configuration_spec(self) -> Configuration:
        """The planner spelling of the current demand model."""
        if self._spec is not None:
            return self._spec
        if self._spec_value is None:
            self._spec_value = Configuration.from_legacy(
                self._configuration, policy=self._policy,
                popularity=self._popularity)
        return self._spec_value

    def _dram_required(self, n: float) -> float:
        cached = self._dram_memo.get(n)
        if cached is not None:
            return cached
        plan = self._planner.plan(self._params.replace(n_streams=n),
                                  self._configuration_spec())
        value = plan.require().total_dram
        self._dram_memo[n] = value
        return value

    def dram_required(self, n_streams: int | None = None) -> float:
        """DRAM the demand model charges for ``n_streams`` streams.

        Defaults to the currently admitted population.  Raises
        :class:`~repro.errors.AdmissionError` /
        :class:`~repro.errors.CapacityError` when the population is not
        schedulable at all (bandwidth or MEMS-capacity exhaustion).
        """
        n = self._admitted if n_streams is None else n_streams
        if n < 0:
            raise ConfigurationError(f"n_streams must be >= 0, got {n!r}")
        return self._dram_required(n)

    def reconfigure(self, *, params: SystemParameters | None = None,
                    configuration: str | None = None,
                    policy: CachePolicy | None = None,
                    popularity: PopularityDistribution | None = None,
                    dram_budget: float | None = None,
                    spec: Configuration | None = None) -> None:
        """Swap the demand model under a live population.

        The online runtime re-plans between service epochs (popularity
        drift, device failure): the admitted count is preserved and
        future :meth:`try_admit` calls are judged against the new model.
        Passing ``spec`` replaces the model wholesale (prefix mode does
        this every epoch — ``h`` moves with the observed popularity);
        the legacy fields update the string-named models and clear any
        previous spec.  The new population is *not* revalidated here —
        callers decide how to shed load if the survivors no longer fit
        (see :mod:`repro.runtime.failures`).

        A swap that changes the demand-model *kind* also re-keys the
        warm-start capacity hint: the parked hint of the new kind (if
        any) seeds the next solve, and the old kind's hint is parked
        for a possible swap back, so a search is never warm-started
        from a different model's answer.
        """
        old_kind = self._configuration
        if spec is not None:
            if configuration is not None or policy is not None \
                    or popularity is not None:
                raise ConfigurationError(
                    "pass either spec= or the legacy configuration "
                    "fields, not both")
            self._spec = spec
            self._configuration = spec.kind.value
            self._policy = spec.policy
            self._popularity = spec.popularity
        elif (configuration is not None or policy is not None
                or popularity is not None):
            base = "none" if self._spec is not None else self._configuration
            new_configuration = (base if configuration is None
                                 else configuration)
            new_policy = self._policy if policy is None else policy
            new_popularity = (self._popularity if popularity is None
                              else popularity)
            self._check_configuration(new_configuration, new_policy,
                                      new_popularity)
            self._spec = None
            self._configuration = new_configuration
            self._policy = new_policy
            self._popularity = new_popularity
        if dram_budget is not None:
            if dram_budget < 0:
                raise ConfigurationError(
                    f"dram_budget must be >= 0, got {dram_budget!r}")
            self._dram_budget = dram_budget
        if params is not None:
            self._params = params.replace(n_streams=0)
        if self._configuration != old_kind:
            if self._capacity_hint is not None:
                self._capacity_hints[old_kind] = self._capacity_hint
            self._capacity_hint = self._capacity_hints.get(
                self._configuration)
        self._capacity_value = None
        self._dram_memo.clear()
        self._reject_memo.clear()
        self._spec_value = None

    def capacity(self, *, limit: int = DEFAULT_INT_LIMIT,
                 hint: int | None = None) -> int:
        """Largest admissible population under the current model.

        Found by the planning layer's warm-startable doubling +
        bisection on the feasibility predicate (DRAM demand is strictly
        increasing in the population) and memoized there.  The
        controller additionally caches the threshold locally — only
        :meth:`reconfigure` invalidates it — and keeps the previous
        answer as the search hint, so re-solving after a small model
        step costs a couple of probes instead of a full bisection.
        This is the loss-system capacity the Erlang-B prediction
        compares against.  ``limit`` bounds the search; ``hint``
        optionally seeds it (e.g. a sibling configuration's capacity)
        and never changes the answer.
        """
        if limit == DEFAULT_INT_LIMIT and self._capacity_value is not None:
            return self._capacity_value
        if hint is None:
            hint = self._capacity_hint
        value = self._planner.capacity(self._params,
                                       self._configuration_spec(),
                                       self._dram_budget, limit=limit,
                                       hint=hint)
        if limit == DEFAULT_INT_LIMIT:
            self._capacity_value = value
            self._capacity_hint = value
        return value

    def try_admit(self) -> AdmissionDecision:
        """Test one more stream; admit it if the system stays feasible.

        Amortized O(1) per arrival: the candidate population is judged
        against the cached capacity threshold, so between model changes
        only the first call pays a (warm-started) solve.  A candidate
        at or below the threshold is feasible by monotonicity and is
        admitted outright; past it, the direct feasibility check runs
        so rejections carry the same diagnosis (and the same reason
        strings) as the uncached path — including populations beyond a
        clamped search ``limit``.
        """
        candidate = self._admitted + 1
        if candidate <= self.capacity():
            self._admitted = candidate
            return AdmissionDecision(admitted=True, n_streams=candidate,
                                     dram_required=self._dram_required(
                                         candidate))
        replay = self._reject_memo.get(candidate)
        if replay is not None:
            return replay
        try:
            dram = self._dram_required(candidate)
        except (AdmissionError, CapacityError) as exc:
            decision = AdmissionDecision(
                admitted=False, n_streams=self._admitted,
                dram_required=None, reason=str(exc))
            self._reject_memo[candidate] = decision
            return decision
        if dram > self._dram_budget:
            decision = AdmissionDecision(
                admitted=False, n_streams=self._admitted, dram_required=dram,
                reason=(f"DRAM requirement {dram:.6g} B exceeds the budget "
                        f"{self._dram_budget:.6g} B"))
            self._reject_memo[candidate] = decision
            return decision
        self._admitted = candidate
        return AdmissionDecision(admitted=True, n_streams=candidate,
                                 dram_required=dram)

    def release(self, count: int = 1) -> None:
        """Return ``count`` streams to the pool (stream departure)."""
        if count < 0 or count > self._admitted:
            raise ConfigurationError(
                f"cannot release {count!r} of {self._admitted} streams")
        self._admitted -= count

    def fill(self) -> int:
        """Admit streams until the first rejection; return the count."""
        while self.try_admit().admitted:
            pass
        return self._admitted
