"""IO request vocabulary shared by the schedulers and the simulator."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

_request_ids = itertools.count()


class IoKind(enum.Enum):
    """Direction of an IO operation relative to the device."""

    READ = "read"
    WRITE = "write"


@dataclass(order=True, slots=True)
class IoRequest:
    """One device IO request.

    Orderable by ``(deadline, request_id)`` so schedulers can use
    requests directly in priority queues.  ``position`` is a normalised
    media coordinate in [0, 1] — a cylinder fraction for disks, an X
    fraction for MEMS devices — used by position-aware schedulers.
    """

    deadline: float
    request_id: int = field(init=False)
    stream_id: int = field(compare=False)
    kind: IoKind = field(compare=False)
    size: float = field(compare=False)
    position: float = field(compare=False, default=0.0)
    #: Simulation time at which the request became serviceable.
    issue_time: float = field(compare=False, default=0.0)

    def __post_init__(self) -> None:
        self.request_id = next(_request_ids)
        if self.size < 0:
            raise ConfigurationError(f"size must be >= 0, got {self.size!r}")
        if not 0 <= self.position <= 1:
            raise ConfigurationError(
                f"position must be in [0, 1], got {self.position!r}")
        if self.issue_time < 0:
            raise ConfigurationError(
                f"issue_time must be >= 0, got {self.issue_time!r}")

    @property
    def slack(self) -> float:
        """Time between becoming serviceable and the deadline."""
        return self.deadline - self.issue_time
