"""Shortest-positioning-time-first scheduling for MEMS devices.

Disk schedulers order by cylinder because seek time dominates and is
monotone in seek distance.  A MEMS device positions in X and Y
*concurrently* (time = max of the two axis moves plus settle), so the
cheapest next request is not necessarily the nearest in either single
axis — the right greedy policy is **SPTF**: repeatedly service the
request with the smallest *positioning time* from the current sled
position, evaluated under the device's kinematic model.

Griffin et al. (OSDI 2000, cited by the paper as [5]) found exactly
this when studying OS management of MEMS storage: classic elevator
variants are suboptimal on sled devices.  This module provides the
greedy SPTF batch scheduler, an X-only elevator baseline for
comparison, and an expected-improvement estimator used by the ablation
benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.devices.mems import MemsDevice
from repro.errors import ConfigurationError


def _check_points(points: np.ndarray) -> np.ndarray:
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ConfigurationError(
            f"points must be an (n, 2) array of normalised (x, y) "
            f"coordinates, got shape {points.shape}")
    if points.size and (points.min() < 0 or points.max() > 1):
        raise ConfigurationError("coordinates must lie in [0, 1]")
    return points


def positioning_time_matrix(device: MemsDevice,
                            points: np.ndarray) -> np.ndarray:
    """Pairwise positioning times between request locations.

    ``points[i] = (x, y)`` in normalised sled coordinates.  Entry
    ``[i, j]`` is the time to reposition from request ``i`` to ``j``
    under the concurrent-axis kinematic model.
    """
    points = _check_points(points)
    dx = np.abs(points[:, 0, None] - points[None, :, 0])
    dy = np.abs(points[:, 1, None] - points[None, :, 1])
    t_x = np.where(dx > 0,
                   device.full_stroke_x * np.sqrt(dx) + device.settle_x,
                   0.0)
    t_y = np.where(dy > 0, device.full_stroke_y * np.sqrt(dy), 0.0)
    return np.maximum(t_x, t_y)


def sptf_order(device: MemsDevice, points: np.ndarray, *,
               start: tuple[float, float] = (0.5, 0.0)) -> list[int]:
    """Greedy SPTF service order over a batch of request locations.

    Returns indices into ``points``.  Ties break on the lower index so
    the order is deterministic.

    Greedy nearest-in-time has no per-instance optimality guarantee —
    a locally cheap first hop can strand the sled far from the rest of
    the batch, occasionally losing even to the submission order.  The
    scheduler therefore evaluates the greedy order against the
    submission order under the same kinematic model and keeps the
    cheaper, so callers get an anytime guarantee: never worse than
    servicing the batch as submitted.
    """
    points = _check_points(points)
    n = len(points)
    if n == 0:
        return []
    start_arr = np.asarray(start, dtype=float)
    if not (0 <= start_arr[0] <= 1 and 0 <= start_arr[1] <= 1):
        raise ConfigurationError(f"start must lie in [0,1]^2, got {start!r}")
    matrix = positioning_time_matrix(device, points)
    dx = np.abs(points[:, 0] - start_arr[0])
    dy = np.abs(points[:, 1] - start_arr[1])
    from_start = np.maximum(
        np.where(dx > 0, device.full_stroke_x * np.sqrt(dx)
                 + device.settle_x, 0.0),
        np.where(dy > 0, device.full_stroke_y * np.sqrt(dy), 0.0))
    remaining = set(range(n))
    order: list[int] = []
    costs = from_start
    while remaining:
        best = min(remaining, key=lambda i: (costs[i], i))
        order.append(best)
        remaining.discard(best)
        costs = matrix[best]

    def order_cost(candidate: list[int]) -> float:
        total = from_start[candidate[0]]
        for a, b in zip(candidate, candidate[1:]):
            total += matrix[a, b]
        return total

    submission = list(range(n))
    if order_cost(submission) < order_cost(order):
        return submission
    return order


def x_elevator_order(points: np.ndarray, *, head_x: float = 0.0) -> list[int]:
    """Disk-style baseline: C-LOOK sweep over the X coordinate only."""
    points = _check_points(points)
    if not 0 <= head_x <= 1:
        raise ConfigurationError(f"head_x must be in [0, 1], got {head_x!r}")
    ahead = sorted((i for i in range(len(points))
                    if points[i, 0] >= head_x),
                   key=lambda i: (points[i, 0], i))
    behind = sorted((i for i in range(len(points))
                     if points[i, 0] < head_x),
                    key=lambda i: (points[i, 0], i))
    return ahead + behind


def batch_positioning_time(device: MemsDevice, points: np.ndarray,
                           order: list[int], *,
                           start: tuple[float, float] = (0.5, 0.0)) -> float:
    """Total positioning time to service ``points`` in ``order``."""
    points = _check_points(points)
    if sorted(order) != list(range(len(points))):
        raise ConfigurationError(
            "order must be a permutation of the request indices")
    total = 0.0
    position = np.asarray(start, dtype=float)
    for index in order:
        target = points[index]
        dx = abs(target[0] - position[0])
        dy = abs(target[1] - position[1])
        total += device.positioning_time(dx, dy)
        position = target
    return total


def sptf_speedup(device: MemsDevice, *, batch_size: int = 64,
                 n_batches: int = 20, seed: int = 0) -> float:
    """Mean positioning-time ratio of the X-elevator over SPTF.

    Random uniformly placed batches; > 1 means SPTF positions faster.
    """
    if batch_size < 1 or n_batches < 1:
        raise ConfigurationError(
            f"batch_size and n_batches must be >= 1, got "
            f"{batch_size!r}/{n_batches!r}")
    rng = np.random.default_rng(seed)
    ratios = []
    for _ in range(n_batches):
        points = rng.random((batch_size, 2))
        sptf = batch_positioning_time(device, points,
                                      sptf_order(device, points))
        elevator = batch_positioning_time(device, points,
                                          x_elevator_order(points))
        ratios.append(elevator / sptf)
    return float(np.mean(ratios))
