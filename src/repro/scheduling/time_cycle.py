"""Time-cycle (QPMS) schedule construction.

The paper adopts the time-cycle service model of Rangan et al. [13]:
time is split into IO cycles and each device performs exactly one IO
per stream per cycle, sized to sustain playback until the stream's next
IO.  For the MEMS-buffer configuration two nested cycles exist
(Figures 4-5):

* per **disk cycle** ``T_disk``: one disk read of ``B * T_disk`` bytes
  per stream, routed whole to a MEMS device (round-robin across the
  bank);
* per **MEMS cycle** ``T_mems = (M/N) * T_disk``: every stream gets one
  MEMS->DRAM read of ``B * T_mems`` bytes, and ``M`` of the disk reads
  land as MEMS writes (``M/N`` of the disk cycle's reads).

:func:`build_buffer_schedule` materialises one *hyper-period*
(``lcm(N, M)`` DRAM transfers per stream pair structure) so the event
simulator can execute and verify it; ``verify_steady_state`` checks the
paper's invariant that bytes written to and read from the bank balance.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.core.buffer_model import BufferDesign
from repro.core.parameters import SystemParameters
from repro.core.theorems import io_cycle_direct
from repro.errors import ConfigurationError, SchedulingError


class OperationKind(enum.Enum):
    """What a scheduled operation moves, and between which levels."""

    #: Disk media read (into DRAM directly, or into the MEMS bank).
    DISK_READ = "disk_read"
    #: Write of a disk read's payload into a MEMS device.
    MEMS_WRITE = "mems_write"
    #: MEMS media read into DRAM.
    MEMS_READ = "mems_read"


@dataclass(frozen=True)
class CycleOperation:
    """One operation inside an IO cycle."""

    kind: OperationKind
    #: Stream the payload belongs to.
    stream_id: int
    #: MEMS device index (None for direct-to-DRAM disk reads).
    device_index: int | None
    #: Payload bytes.
    size: float

    def __post_init__(self) -> None:
        if self.stream_id < 0:
            raise ConfigurationError(
                f"stream_id must be >= 0, got {self.stream_id!r}")
        if self.size < 0:
            raise ConfigurationError(f"size must be >= 0, got {self.size!r}")


@dataclass(frozen=True)
class TimeCycleSchedule:
    """A repeating schedule: cycles of operations on each resource.

    ``disk_cycles`` lists, per disk IO cycle in the hyper-period, the
    disk's operations; ``mems_cycles`` likewise for the MEMS bank (all
    devices interleaved; filter by ``device_index``).  A direct
    (no-MEMS) schedule has one disk cycle and no MEMS cycles.
    """

    params: SystemParameters
    t_disk: float
    t_mems: float | None
    disk_cycles: list[list[CycleOperation]]
    mems_cycles: list[list[CycleOperation]] = field(default_factory=list)

    @property
    def hyper_period(self) -> float:
        """Length of one full repetition of the schedule, seconds."""
        return self.t_disk * len(self.disk_cycles)

    @property
    def n_streams(self) -> int:
        return int(self.params.n_streams)

    def bytes_by_kind(self, kind: OperationKind) -> float:
        """Total payload moved by ``kind`` operations per hyper-period."""
        total = 0.0
        for cycle in self.disk_cycles:
            total += sum(op.size for op in cycle if op.kind is kind)
        for cycle in self.mems_cycles:
            total += sum(op.size for op in cycle if op.kind is kind)
        return total

    def verify_steady_state(self, *, rel_tol: float = 1e-9) -> None:
        """Check the paper's balance invariants; raise SchedulingError if broken.

        Over a hyper-period: (1) bytes read from disk equal bytes
        written to the MEMS bank (buffer config), (2) bytes written to
        the bank equal bytes read from it, and (3) every stream
        receives exactly its playback demand.
        """
        disk_bytes = self.bytes_by_kind(OperationKind.DISK_READ)
        written = self.bytes_by_kind(OperationKind.MEMS_WRITE)
        read = self.bytes_by_kind(OperationKind.MEMS_READ)
        if self.mems_cycles:
            if not math.isclose(disk_bytes, written, rel_tol=rel_tol):
                raise SchedulingError(
                    f"disk reads ({disk_bytes:.6g} B) != MEMS writes "
                    f"({written:.6g} B) per hyper-period")
            if not math.isclose(written, read, rel_tol=rel_tol):
                raise SchedulingError(
                    f"MEMS writes ({written:.6g} B) != MEMS reads "
                    f"({read:.6g} B) per hyper-period")
            delivered = read
        else:
            delivered = disk_bytes
        demand = self.params.offered_load * self.hyper_period
        if not math.isclose(delivered, demand, rel_tol=rel_tol):
            raise SchedulingError(
                f"delivered {delivered:.6g} B per hyper-period but streams "
                f"consume {demand:.6g} B")
        per_stream = self.params.bit_rate * self.hyper_period
        for stream in range(self.n_streams):
            got = sum(op.size
                      for cycle in (self.mems_cycles or self.disk_cycles)
                      for op in cycle
                      if op.stream_id == stream
                      and op.kind in (OperationKind.MEMS_READ,
                                      OperationKind.DISK_READ)
                      and (self.mems_cycles
                           or op.device_index is None))
            if not math.isclose(got, per_stream, rel_tol=rel_tol):
                raise SchedulingError(
                    f"stream {stream} receives {got:.6g} B per hyper-period, "
                    f"needs {per_stream:.6g} B")


def build_direct_schedule(params: SystemParameters, *,
                          t_cycle: float | None = None) -> TimeCycleSchedule:
    """Disk-to-DRAM schedule (Theorem 1): one cycle, one IO per stream.

    ``t_cycle`` defaults to the minimal feasible cycle of Eq. 6.
    """
    n = int(params.n_streams)
    if n != params.n_streams or n < 1:
        raise ConfigurationError(
            f"a schedule needs a positive integer stream count, got "
            f"{params.n_streams!r}")
    minimum = io_cycle_direct(n, params.bit_rate, params.r_disk, params.l_disk)
    if t_cycle is None:
        t_cycle = minimum
    elif t_cycle < minimum * (1 - 1e-12):
        raise SchedulingError(
            f"t_cycle={t_cycle:.6g}s is below the feasible minimum "
            f"{minimum:.6g}s")
    io_size = params.bit_rate * t_cycle
    ops = [CycleOperation(kind=OperationKind.DISK_READ, stream_id=i,
                          device_index=None, size=io_size)
           for i in range(n)]
    return TimeCycleSchedule(params=params, t_disk=t_cycle, t_mems=None,
                             disk_cycles=[ops])


def build_buffer_schedule(design: BufferDesign) -> TimeCycleSchedule:
    """Materialise one hyper-period of the two-level schedule (Figs 4-5).

    Needs a finite, quantised design (``design.m`` set).  Streams are
    assigned to MEMS devices round-robin (stream ``i`` lives on device
    ``i mod k``), preserving whole disk IOs per device as Section 3.1.2
    prescribes.
    """
    params = design.params
    n = int(params.n_streams)
    if n != params.n_streams or n < 2:
        raise ConfigurationError(
            f"the buffer schedule needs an integer N >= 2, got "
            f"{params.n_streams!r}")
    if design.m is None or design.t_mems is None or math.isinf(design.t_disk):
        raise SchedulingError(
            "build_buffer_schedule needs a finite quantised BufferDesign "
            "(design_mems_buffer(..., quantise=True) with finite size_mems)")
    m = design.m
    k = params.k
    group = math.lcm(n, m)
    n_disk_cycles = group // n
    n_mems_cycles = group // m
    disk_io = params.bit_rate * design.t_disk
    dram_io = params.bit_rate * design.t_mems

    # Disk cycles: one read per stream per cycle, round-robin devices.
    disk_cycles: list[list[CycleOperation]] = []
    disk_reads: list[CycleOperation] = []  # flattened, in service order
    for _ in range(n_disk_cycles):
        cycle = [CycleOperation(kind=OperationKind.DISK_READ, stream_id=i,
                                device_index=i % k, size=disk_io)
                 for i in range(n)]
        disk_cycles.append(cycle)
        disk_reads.extend(cycle)

    # MEMS cycles: N DRAM reads plus M disk-write landings per cycle.
    mems_cycles: list[list[CycleOperation]] = []
    write_cursor = 0
    for _ in range(n_mems_cycles):
        cycle = [CycleOperation(kind=OperationKind.MEMS_READ, stream_id=i,
                                device_index=i % k, size=dram_io)
                 for i in range(n)]
        for _ in range(m):
            source = disk_reads[write_cursor]
            cycle.append(CycleOperation(kind=OperationKind.MEMS_WRITE,
                                        stream_id=source.stream_id,
                                        device_index=source.device_index,
                                        size=source.size))
            write_cursor += 1
        mems_cycles.append(cycle)
    if write_cursor != len(disk_reads):
        raise SchedulingError(
            f"hyper-period bookkeeping error: landed {write_cursor} of "
            f"{len(disk_reads)} disk reads")  # pragma: no cover

    return TimeCycleSchedule(params=params, t_disk=design.t_disk,
                             t_mems=design.t_mems, disk_cycles=disk_cycles,
                             mems_cycles=mems_cycles)
