"""Figure 7: cost-reduction sensitivity to the latency ratio.

The Section 5.1.3 case study: a 2007 off-the-shelf server with at most
5 GB of DRAM and a 20 GB / $20 two-device G3 MEMS buffer.  Panel (a)
sweeps the disk/MEMS latency ratio from 1 to 10 (the FutureDisk-G3
pair sits near 5) for the four media bit-rates; panel (b) maps the
25% / 50% / 75% cost-reduction regions over the bit-rate x ratio plane.

Every sweep point solves through the shared memoized planner (via
:mod:`repro.core.sensitivity`), so points shared between panel (a)
curves and the panel (b) grid are computed once.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.parameters import SystemParameters
from repro.core.sensitivity import (
    cost_reduction_at_ratio,
    latency_ratio_sweep,
)
from repro.core.theorems import min_buffer_disk_dram
from repro.devices.catalog import MEDIA_BITRATES
from repro.errors import ConfigurationError
from repro.experiments.ascii_plot import render_contours
from repro.experiments.base import ExperimentResult, Series
from repro.perf.parallel import batchable, sweep_map
from repro.planner.batch import buffer_total_dram
from repro.planner.throughput import max_streams_without_mems
from repro.units import GB, KB, MB

__all__ = ["CONTOUR_LEVELS", "DRAM_CAPACITY", "run", "run_panel_a", "run_panel_b"]

#: The case-study DRAM restriction (Section 5.1.3).
DRAM_CAPACITY = 5 * GB
#: Contour levels of panel (b), percent.
CONTOUR_LEVELS = [25.0, 50.0, 75.0]


def _base(bit_rate: float, k: int) -> SystemParameters:
    return SystemParameters.table3_default(n_streams=1, bit_rate=bit_rate,
                                           k=k)


def _reduction_percents(bit_rate: float, k: int,
                        ratios: tuple[float, ...]) -> list[float]:
    """Percentage cost reductions at each ratio, solved on one axis.

    Vector twin of :func:`repro.core.sensitivity.cost_reduction_at_ratio`
    over the latency-ratio axis.  Only ``l_mems = l_disk / ratio``
    varies along the axis; the no-MEMS baseline (a DIRECT closed-form
    solve that never reads ``l_mems``) is computed once through the
    scalar path, and the Theorem 2 demand of the MEMS configuration is
    one :func:`repro.planner.batch.buffer_total_dram` evaluation.
    """
    base = _base(bit_rate, k)
    if base.size_mems is None:
        raise ConfigurationError(
            "Figure 7 prices the MEMS bank; size_mems must be finite")
    ratio_axis = np.asarray(ratios, dtype=np.float64)
    if np.any(ratio_axis <= 0):
        raise ConfigurationError("latency ratios must be > 0")
    l_mems = base.l_disk / ratio_axis
    n = math.floor(max_streams_without_mems(
        base.with_latency_ratio(float(ratio_axis[0])), DRAM_CAPACITY)
        + 1e-9)
    if n < 1:
        # cost_without == 0 at every ratio; percent_reduction is 0.
        return [0.0] * len(ratios)
    at_n = base.replace(n_streams=n)
    dram_without = n * min_buffer_disk_dram(at_n)
    cost_without = base.c_dram * dram_without
    totals = buffer_total_dram(
        float(n), bit_rate=base.bit_rate, r_disk=base.r_disk,
        l_disk=base.l_disk, r_mems=base.r_mems, l_mems=l_mems,
        k=float(base.k), bank_capacity=base.mems_bank_capacity)
    # An infeasible bank does not engage; its purchase cost stays sunk.
    dram_with = np.where(np.isfinite(totals), totals, dram_without)
    cost_with = base.mems_bank_cost + base.c_dram * dram_with
    percent = 100.0 * (cost_without - cost_with) / cost_without
    return [float(p) for p in percent]


def _sweep_rate_a_batch(
        items: list[tuple[str, float, int, tuple[float, ...]]],
) -> list[Series]:
    """Vectorized twin of :func:`_sweep_rate_a`."""
    return [Series(label=name, x=[float(r) for r in ratio_values],
                   y=_reduction_percents(bit_rate, k, ratio_values))
            for name, bit_rate, k, ratio_values in items]


@batchable(_sweep_rate_a_batch)
def _sweep_rate_a(item: tuple[str, float, int, tuple[float, ...]]) -> Series:
    """Worker: one panel-(a) curve (picklable; solves in-process)."""
    name, bit_rate, k, ratio_values = item
    points = latency_ratio_sweep(_base(bit_rate, k), list(ratio_values),
                                 DRAM_CAPACITY)
    return Series(label=name,
                  x=[p.latency_ratio for p in points],
                  y=[p.percent_reduction for p in points])


def run_panel_a(*, k: int = 2, ratios: list[float] | None = None,
                bit_rates: dict[str, float] | None = None,
                jobs: int = 1, batch: bool = False) -> ExperimentResult:
    """Percentage cost reduction vs latency ratio, one curve per bit-rate."""
    rates = bit_rates if bit_rates is not None else dict(MEDIA_BITRATES)
    ratio_values = ratios if ratios is not None else [
        1 + 0.5 * i for i in range(19)]  # 1.0 .. 10.0
    items = [(name, bit_rate, k, tuple(ratio_values))
             for name, bit_rate in rates.items()]
    series = sweep_map(_sweep_rate_a, items, jobs=jobs, batch=batch)
    result = ExperimentResult(
        experiment_id="figure7a",
        title="Percentage cost reduction vs latency ratio "
              "(5 GB DRAM cap, 2x G3 MEMS)",
        x_label="Latency ratio",
        y_label="Percentage reduction in cost",
        series=series,
    )
    cap = 100.0 * (1 - 20.0 / (DRAM_CAPACITY / GB * 20.0 + 20.0))
    result.notes.append(
        "the $20 MEMS bank bounds the reduction below "
        f"{cap:.0f}% of the $120 full-system buffering budget")
    return result


def _grid_row_batch(
        items: list[tuple[float, int, tuple[float, ...]]],
) -> list[list[float]]:
    """Vectorized twin of :func:`_grid_row`: one axis solve per row."""
    return [_reduction_percents(bit_rate, k, ratios)
            for bit_rate, k, ratios in items]


@batchable(_grid_row_batch)
def _grid_row(item: tuple[float, int, tuple[float, ...]]) -> list[float]:
    """Worker: one bit-rate row of the panel-(b) reduction grid."""
    bit_rate, k, ratios = item
    base = _base(bit_rate, k)
    return [cost_reduction_at_ratio(base, float(r),
                                    DRAM_CAPACITY).percent_reduction
            for r in ratios]


def run_panel_b(*, k: int = 2, n_rate_points: int = 16,
                n_ratio_points: int = 10, jobs: int = 1,
                batch: bool = False) -> ExperimentResult:
    """Contour regions of percentage cost reduction (panel b)."""
    bit_rates = np.logspace(np.log10(10 * KB), np.log10(10 * MB),
                            n_rate_points)
    ratios = np.linspace(1.0, 10.0, n_ratio_points)
    items = [(float(bit_rate), k, tuple(map(float, ratios)))
             for bit_rate in bit_rates]
    grid = sweep_map(_grid_row, items, jobs=jobs, batch=batch)
    contour_text = render_contours(
        grid, list(map(float, ratios)),
        [float(b) / KB for b in bit_rates], CONTOUR_LEVELS,
        x_label="latency ratio", y_label="bit-rate (KB/s)")
    result = ExperimentResult(
        experiment_id="figure7b",
        title="Cost-reduction regions (contours at 25/50/75%)",
        x_label="Latency ratio",
        y_label="Bit-rate (KB/s)",
    )
    result.notes.append("\n" + contour_text)
    # Also expose the raw grid as series (one per bit-rate row) for CSV.
    for i, bit_rate in enumerate(bit_rates):
        result.series.append(Series(
            label=f"{float(bit_rate) / KB:.3g}KB/s",
            x=list(map(float, ratios)),
            y=[float(v) for v in grid[i]]))
    return result


def run(**kwargs) -> ExperimentResult:
    """Default runner: panel (a)."""
    return run_panel_a(**kwargs)
