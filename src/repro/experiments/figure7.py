"""Figure 7: cost-reduction sensitivity to the latency ratio.

The Section 5.1.3 case study: a 2007 off-the-shelf server with at most
5 GB of DRAM and a 20 GB / $20 two-device G3 MEMS buffer.  Panel (a)
sweeps the disk/MEMS latency ratio from 1 to 10 (the FutureDisk-G3
pair sits near 5) for the four media bit-rates; panel (b) maps the
25% / 50% / 75% cost-reduction regions over the bit-rate x ratio plane.

Every sweep point solves through the shared memoized planner (via
:mod:`repro.core.sensitivity`), so points shared between panel (a)
curves and the panel (b) grid are computed once.
"""

from __future__ import annotations

import numpy as np

from repro.core.parameters import SystemParameters
from repro.core.sensitivity import (
    cost_reduction_at_ratio,
    latency_ratio_sweep,
)
from repro.devices.catalog import MEDIA_BITRATES
from repro.experiments.ascii_plot import render_contours
from repro.experiments.base import ExperimentResult, Series
from repro.perf.parallel import sweep_map
from repro.units import GB, KB, MB

__all__ = ["CONTOUR_LEVELS", "DRAM_CAPACITY", "run", "run_panel_a", "run_panel_b"]

#: The case-study DRAM restriction (Section 5.1.3).
DRAM_CAPACITY = 5 * GB
#: Contour levels of panel (b), percent.
CONTOUR_LEVELS = [25.0, 50.0, 75.0]


def _base(bit_rate: float, k: int) -> SystemParameters:
    return SystemParameters.table3_default(n_streams=1, bit_rate=bit_rate,
                                           k=k)


def _sweep_rate_a(item: tuple[str, float, int, tuple[float, ...]]) -> Series:
    """Worker: one panel-(a) curve (picklable; solves in-process)."""
    name, bit_rate, k, ratio_values = item
    points = latency_ratio_sweep(_base(bit_rate, k), list(ratio_values),
                                 DRAM_CAPACITY)
    return Series(label=name,
                  x=[p.latency_ratio for p in points],
                  y=[p.percent_reduction for p in points])


def run_panel_a(*, k: int = 2, ratios: list[float] | None = None,
                bit_rates: dict[str, float] | None = None,
                jobs: int = 1) -> ExperimentResult:
    """Percentage cost reduction vs latency ratio, one curve per bit-rate."""
    rates = bit_rates if bit_rates is not None else dict(MEDIA_BITRATES)
    ratio_values = ratios if ratios is not None else [
        1 + 0.5 * i for i in range(19)]  # 1.0 .. 10.0
    items = [(name, bit_rate, k, tuple(ratio_values))
             for name, bit_rate in rates.items()]
    series = sweep_map(_sweep_rate_a, items, jobs=jobs)
    result = ExperimentResult(
        experiment_id="figure7a",
        title="Percentage cost reduction vs latency ratio "
              "(5 GB DRAM cap, 2x G3 MEMS)",
        x_label="Latency ratio",
        y_label="Percentage reduction in cost",
        series=series,
    )
    cap = 100.0 * (1 - 20.0 / (DRAM_CAPACITY / GB * 20.0 + 20.0))
    result.notes.append(
        "the $20 MEMS bank bounds the reduction below "
        f"{cap:.0f}% of the $120 full-system buffering budget")
    return result


def _grid_row(item: tuple[float, int, tuple[float, ...]]) -> list[float]:
    """Worker: one bit-rate row of the panel-(b) reduction grid."""
    bit_rate, k, ratios = item
    base = _base(bit_rate, k)
    return [cost_reduction_at_ratio(base, float(r),
                                    DRAM_CAPACITY).percent_reduction
            for r in ratios]


def run_panel_b(*, k: int = 2, n_rate_points: int = 16,
                n_ratio_points: int = 10, jobs: int = 1) -> ExperimentResult:
    """Contour regions of percentage cost reduction (panel b)."""
    bit_rates = np.logspace(np.log10(10 * KB), np.log10(10 * MB),
                            n_rate_points)
    ratios = np.linspace(1.0, 10.0, n_ratio_points)
    items = [(float(bit_rate), k, tuple(map(float, ratios)))
             for bit_rate in bit_rates]
    grid = sweep_map(_grid_row, items, jobs=jobs)
    contour_text = render_contours(
        grid, list(map(float, ratios)),
        [float(b) / KB for b in bit_rates], CONTOUR_LEVELS,
        x_label="latency ratio", y_label="bit-rate (KB/s)")
    result = ExperimentResult(
        experiment_id="figure7b",
        title="Cost-reduction regions (contours at 25/50/75%)",
        x_label="Latency ratio",
        y_label="Bit-rate (KB/s)",
    )
    result.notes.append("\n" + contour_text)
    # Also expose the raw grid as series (one per bit-rate row) for CSV.
    for i, bit_rate in enumerate(bit_rates):
        result.series.append(Series(
            label=f"{float(bit_rate) / KB:.3g}KB/s",
            x=list(map(float, ratios)),
            y=[float(v) for v in grid[i]]))
    return result


def run(**kwargs) -> ExperimentResult:
    """Default runner: panel (a)."""
    return run_panel_a(**kwargs)
