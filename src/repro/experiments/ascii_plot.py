"""Plain-text chart rendering.

The evaluation figures are reproduced as data series; this module draws
them as ASCII charts so results are inspectable without any plotting
dependency.  Each series gets a marker character; axes support log
scaling (most of the paper's figures are log-log).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.base import ExperimentResult

#: Marker characters assigned to series in order.
MARKERS = "*o+x#@%&"


def _transform(value: float, log: bool) -> float | None:
    if log:
        if value <= 0:
            return None
        return math.log10(value)
    return value


def _axis_format(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e5 or magnitude < 1e-2:
        return f"{value:.1e}"
    if magnitude >= 100:
        return f"{value:.0f}"
    return f"{value:.3g}"


def render_chart(result: "ExperimentResult", *, width: int = 76,
                 height: int = 20) -> str:
    """Draw the result's series on a character grid with axes."""
    if width < 20 or height < 5:
        raise ConfigurationError(
            f"chart needs width >= 20 and height >= 5, got "
            f"{width!r} x {height!r}")
    points: list[tuple[float, float, str]] = []
    for marker, series in zip(MARKERS, result.series):
        for x, y in zip(series.x, series.y):
            tx = _transform(x, result.log_x)
            ty = _transform(y, result.log_y)
            if tx is not None and ty is not None:
                points.append((tx, ty, marker))
    if not points:
        return "(no drawable points)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for tx, ty, marker in points:
        col = round((tx - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((ty - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = marker

    def back(value: float, log: bool) -> float:
        return 10 ** value if log else value

    label_width = 10
    lines = []
    y_top = _axis_format(back(y_hi, result.log_y))
    y_bottom = _axis_format(back(y_lo, result.log_y))
    for i, row_cells in enumerate(grid):
        if i == 0:
            label = y_top
        elif i == height - 1:
            label = y_bottom
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row_cells))
    lines.append(" " * label_width + "-+" + "-" * width)
    x_left = _axis_format(back(x_lo, result.log_x))
    x_right = _axis_format(back(x_hi, result.log_x))
    gap = max(1, width - len(x_left) - len(x_right))
    lines.append(" " * (label_width + 2) + x_left + " " * gap + x_right)
    axis_note = []
    if result.x_label:
        axis_note.append(f"x: {result.x_label}"
                         + (" (log)" if result.log_x else ""))
    if result.y_label:
        axis_note.append(f"y: {result.y_label}"
                         + (" (log)" if result.log_y else ""))
    if axis_note:
        lines.append(" " * (label_width + 2) + "; ".join(axis_note))
    legend = "  ".join(f"{marker}={series.label}" for marker, series in
                       zip(MARKERS, result.series))
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)


def render_contours(grid: list[list[float]], x_values: list[float],
                    y_values: list[float], levels: list[float], *,
                    x_label: str = "", y_label: str = "") -> str:
    """Character map of which contour band each grid cell falls in.

    ``grid[i][j]`` is the value at ``y_values[i]``, ``x_values[j]``
    (rows render top-to-bottom as descending ``y``).  Cells are marked
    with the index (1-9) of the highest level they meet, or ``.`` below
    the first level.
    """
    if not grid or not grid[0]:
        raise ConfigurationError("contour grid must be non-empty")
    if len(levels) > 9:
        raise ConfigurationError("at most 9 contour levels supported")
    sorted_levels = sorted(levels)
    lines = []
    for i in reversed(range(len(grid))):
        row = grid[i]
        cells = []
        for value in row:
            band = 0
            for idx, level in enumerate(sorted_levels, start=1):
                if value >= level:
                    band = idx
            cells.append(str(band) if band else ".")
        label = _axis_format(y_values[i])
        lines.append(f"{label:>10} |" + "".join(cells))
    lines.append(" " * 10 + "-+" + "-" * len(grid[0]))
    x_left = _axis_format(x_values[0])
    x_right = _axis_format(x_values[-1])
    gap = max(1, len(grid[0]) - len(x_left) - len(x_right))
    lines.append(" " * 12 + x_left + " " * gap + x_right)
    legend = "  ".join(f"{idx}=>{level:g}" for idx, level in
                       enumerate(sorted_levels, start=1))
    note = []
    if x_label:
        note.append(f"x: {x_label}")
    if y_label:
        note.append(f"y: {y_label}")
    lines.append(" " * 12 + "bands: " + legend
                 + ("   " + "; ".join(note) if note else ""))
    return "\n".join(lines)
