"""Figure 6: total DRAM requirement vs number of streams.

Panel (a): direct disk-to-DRAM streaming (Theorem 1); panel (b): with a
two-device G3 MEMS buffer (Theorem 2, unlimited MEMS storage as in the
paper's Section 5.1.1 relaxation).  Four bit-rates (mp3 / DivX / DVD /
HDTV), both axes logarithmic.  Each curve ends where the load saturates
the disk (or, with the buffer, the MEMS bank's doubled load saturates
the bank).

Both panels solve through the shared planner
(:func:`repro.planner.default_planner`), so re-running a panel — or the
double sweep of :func:`reduction_factors` — replays memoized solves.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.parameters import SystemParameters
from repro.devices.catalog import MEDIA_BITRATES
from repro.experiments.base import ExperimentResult, Series
from repro.perf.parallel import batchable, sweep_map
from repro.planner import Configuration, default_planner
from repro.planner.batch import demand_curve
from repro.units import GB

__all__ = ["reduction_factors", "run"]


def _stream_counts(max_streams: float = 1e5, per_decade: int = 12) -> list[int]:
    """Log-spaced integer stream counts from 1 to ``max_streams``."""
    raw = np.logspace(0, np.log10(max_streams),
                      int(np.log10(max_streams) * per_decade) + 1)
    counts = sorted({int(round(v)) for v in raw})
    return [c for c in counts if c >= 1]


def _stream_counts_for(bit_rate: float, *, max_streams: float = 1e5,
                       r_disk: float | None = None) -> list[int]:
    """Sweep points for one bit-rate, densified near disk saturation.

    The DRAM requirement (and hence the cost savings) rises steeply as
    ``N -> R_disk / B``, so a pure log grid misses the knee; points at
    90/95/97% utilisation are added explicitly.
    """
    if r_disk is None:
        from repro.devices.catalog import FUTURE_DISK_2007

        r_disk = FUTURE_DISK_2007.transfer_rate
    counts = set(_stream_counts(max_streams))
    saturation = r_disk / bit_rate
    for utilization in (0.90, 0.95, 0.97):
        n = int(utilization * saturation)
        if 1 <= n <= max_streams:
            counts.add(n)
    return sorted(counts)


def _sweep_rate_batch(
        items: list[tuple[str, float, bool, int, float]]) -> list[Series]:
    """Vectorized twin of :func:`_sweep_rate`: one demand curve per item.

    Each item's whole population axis is solved in one
    :func:`repro.planner.batch.demand_curve` call; an ``inf`` entry is
    the batch spelling of the scalar path's infeasible-plan break, so
    the curve ends at the same point with the same values.
    """
    series: list[Series] = []
    for name, bit_rate, with_mems, k, max_streams in items:
        configuration = (Configuration.buffer(k) if with_mems
                         else Configuration.direct())
        counts = _stream_counts_for(bit_rate, max_streams=max_streams)
        base = SystemParameters.table3_default(
            n_streams=counts[0], bit_rate=bit_rate, k=k,
            size_mems_unlimited=True)
        totals = demand_curve(base, configuration, counts)
        xs: list[float] = []
        ys: list[float] = []
        for n, total in zip(counts, totals):
            if not math.isfinite(total):
                break  # load saturates the device; the curve ends here
            xs.append(float(n))
            ys.append(float(total) / GB)
        series.append(Series(label=f"{name}", x=xs, y=ys))
    return series


@batchable(_sweep_rate_batch)
def _sweep_rate(item: tuple[str, float, bool, int, float]) -> Series:
    """Worker: one bit-rate's curve (picklable; rebuilds its planner)."""
    name, bit_rate, with_mems, k, max_streams = item
    planner = default_planner()
    configuration = (Configuration.buffer(k) if with_mems
                     else Configuration.direct())
    xs: list[float] = []
    ys: list[float] = []
    for n in _stream_counts_for(bit_rate, max_streams=max_streams):
        params = SystemParameters.table3_default(
            n_streams=n, bit_rate=bit_rate, k=k,
            size_mems_unlimited=True)
        plan = planner.plan(params, configuration)
        if not plan.feasible:
            break  # load saturates the device; the curve ends here
        xs.append(float(n))
        ys.append(plan.total_dram / GB)
    return Series(label=f"{name}", x=xs, y=ys)


def run(*, with_mems: bool, k: int = 2,
        bit_rates: dict[str, float] | None = None,
        max_streams: float = 1e5, jobs: int = 1,
        batch: bool = False) -> ExperimentResult:
    """Panel (a) with ``with_mems=False``, panel (b) with ``True``."""
    rates = bit_rates if bit_rates is not None else dict(MEDIA_BITRATES)
    items = [(name, bit_rate, with_mems, k, max_streams)
             for name, bit_rate in rates.items()]
    series = sweep_map(_sweep_rate, items, jobs=jobs, batch=batch)
    panel = "b (with MEMS buffer)" if with_mems else "a (without MEMS buffer)"
    result = ExperimentResult(
        experiment_id=f"figure6{'b' if with_mems else 'a'}",
        title=f"DRAM requirement for various media types — panel {panel}",
        x_label="Number of streams",
        y_label="DRAM requirement (GB)",
        series=series,
        log_x=True,
        log_y=True,
    )
    for s in series:
        if s.y:
            result.notes.append(
                f"{s.label}: up to {s.y[-1]:.3g} GB at N={s.x[-1]:.0f}")
    return result


def reduction_factors(*, k: int = 2,
                      bit_rates: dict[str, float] | None = None,
                      max_streams: float = 1e5) -> dict[str, float]:
    """DRAM reduction factor (a / b) at each bit-rate's largest common N.

    The paper's headline: "the DRAM requirement is reduced by an order
    of magnitude to support a given system throughput".
    """
    without = run(with_mems=False, k=k, bit_rates=bit_rates,
                  max_streams=max_streams)
    with_buf = run(with_mems=True, k=k, bit_rates=bit_rates,
                   max_streams=max_streams)
    factors = {}
    for s_a, s_b in zip(without.series, with_buf.series):
        common = min(len(s_a.x), len(s_b.x))
        if common:
            factors[s_a.label] = s_a.y[common - 1] / s_b.y[common - 1]
    return factors
