"""Extension experiments (beyond the paper's figures).

Each runner quantifies one of the extensions DESIGN.md lists — the
paper's future-work directions and the operational questions the
analytical model can answer once the substrate exists:

* ``ext_startup`` — playback startup latency per configuration (the
  buffer's hidden cost; the cache's hidden benefit).
* ``ext_placement`` — organ-pipe sled placement gain vs popularity skew
  (paper §7 direction 2).
* ``ext_sptf`` — SPTF vs single-axis elevator positioning on the sled.
* ``ext_blocking`` — session blocking probability vs DRAM budget for
  the three configurations.
* ``ext_hybrid`` — throughput of every buffer/cache split of the bank
  (paper §7 direction 1).
* ``ext_robustness`` — underflow under *sampled* (stochastic) disk
  latencies vs provisioned buffer headroom: why real servers pad the
  analytical minimum.
* ``ext_write_mix`` — recording (write-stream) capacity alongside a
  growing viewer population.
"""

from __future__ import annotations

import numpy as np

from repro.core.buffer_model import design_mems_buffer
from repro.core.cache_model import CachePolicy, design_mems_cache
from repro.planner.hybrid import hybrid_split_curve
from repro.planner.throughput import streams_supported
from repro.core.parameters import SystemParameters
from repro.core.popularity import BimodalPopularity
from repro.core.startup import (
    buffered_startup,
    cache_startup,
    direct_startup,
)
from repro.core.write_streams import max_writers_supported
from repro.devices.catalog import FUTURE_DISK_2007, MEMS_G3
from repro.devices.mems_placement import placement_improvement
from repro.experiments.base import ExperimentResult, Series, Table
from repro.perf.parallel import batchable, sweep_map
from repro.planner.batch import batch_max_streams
from repro.planner.configuration import Configuration
from repro.scheduling.sptf import sptf_speedup
from repro.simulation.pipelines import simulate_direct_pipeline
from repro.units import GB, KB, MB, MS
from repro.workloads.arrivals import erlang_b


def run_ext_startup(*, bit_rates: dict[str, float] | None = None,
                    n_streams: int = 60, k: int = 2) -> ExperimentResult:
    """Worst/expected startup latency per configuration and bit-rate."""
    rates = bit_rates if bit_rates is not None else {
        "DivX": 100 * KB, "DVD": 1 * MB}
    rows: list[list[object]] = []
    for name, bit_rate in rates.items():
        params = SystemParameters.table3_default(n_streams=n_streams,
                                                 bit_rate=bit_rate, k=k)
        design = design_mems_buffer(params)
        cache = design_mems_cache(params, CachePolicy.REPLICATED,
                                  BimodalPopularity(5, 95))
        entries = [direct_startup(params),
                   buffered_startup(design, bypass=True),
                   buffered_startup(design, bypass=False),
                   cache_startup(cache)]
        for entry in entries:
            rows.append([name, entry.configuration,
                         f"{entry.expected:.3f}", f"{entry.worst:.3f}"])
    result = ExperimentResult(
        experiment_id="ext-startup",
        title="Playback startup latency by configuration (seconds)",
        table=Table(columns=["media", "configuration", "expected [s]",
                             "worst [s]"], rows=rows))
    result.notes.append(
        "the naive buffer pipeline costs ~3 disk cycles of startup; the "
        "bypass policy and the cache recover interactive startup")
    return result


def run_ext_placement(*, n_titles: int = 32) -> ExperimentResult:
    """Organ-pipe placement gain vs popularity skew (future work #2)."""
    xs: list[float] = []
    ys: list[float] = []
    for base in (1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 8.0):
        weights = [base ** -i for i in range(n_titles)]
        xs.append(base)
        ys.append(placement_improvement(weights, MEMS_G3))
    result = ExperimentResult(
        experiment_id="ext-placement",
        title="Organ-pipe sled placement gain vs popularity skew",
        x_label="geometric weight ratio between adjacent ranks",
        y_label="seek-time improvement (x)",
        series=[Series(label="organ-pipe / sequential", x=xs, y=ys)])
    best = max(ys)
    result.notes.append(
        f"peak gain {best:.2f}x at moderate skew; vanishes at uniform "
        "weights and at extreme skew (same-title hits need no seek)")
    return result


def run_ext_sptf(*, batch_sizes: tuple[int, ...] = (8, 16, 32, 64, 128),
                 n_batches: int = 10, seed: int = 0) -> ExperimentResult:
    """SPTF vs X-only elevator positioning time on the G3 device."""
    xs = [float(b) for b in batch_sizes]
    ys = [sptf_speedup(MEMS_G3, batch_size=b, n_batches=n_batches,
                       seed=seed) for b in batch_sizes]
    result = ExperimentResult(
        experiment_id="ext-sptf",
        title="SPTF vs X-elevator on the MEMS sled",
        x_label="batch size (pending requests)",
        y_label="positioning-time ratio (elevator / SPTF)",
        series=[Series(label="speedup", x=xs, y=ys)])
    result.notes.append(
        "single-axis orderings are suboptimal on a sled that moves X "
        "and Y concurrently (cf. Griffin et al., OSDI 2000)")
    return result


def _blocking_rows(
        item: tuple[float, float, float]) -> list[list[object]]:
    """Worker: one DRAM budget's three blocking rows (picklable)."""
    budget_gb, bit_rate, utilization = item
    popularity = BimodalPopularity(5, 95)
    budget = budget_gb * GB
    params = SystemParameters.table3_default(n_streams=1,
                                             bit_rate=bit_rate, k=2)
    capacities = {
        "disk only": streams_supported(params, budget),
        "MEMS buffer": streams_supported(params, budget,
                                         configuration="buffer"),
        "MEMS cache": streams_supported(params, budget,
                                        configuration="cache",
                                        policy=CachePolicy.REPLICATED,
                                        popularity=popularity),
    }
    offered = utilization * capacities["disk only"]
    return [[f"{budget_gb:g} GB", name, capacity,
             f"{erlang_b(offered, capacity):.4f}"]
            for name, capacity in capacities.items()]


def run_ext_blocking(*, bit_rate: float = 200 * KB,
                     budgets_gb: tuple[float, ...] = (1.0, 2.0, 4.0),
                     utilization: float = 1.02,
                     jobs: int = 1, batch: bool = False) -> ExperimentResult:
    """Erlang-B blocking per configuration as the DRAM budget grows.

    The offered load is pinned to ``utilization`` times the *disk-only*
    capacity at each budget, so the table shows how much blocking the
    MEMS configurations remove at the same spend.
    """
    items = [(budget_gb, bit_rate, utilization)
             for budget_gb in budgets_gb]
    rows = [row for block in sweep_map(_blocking_rows, items, jobs=jobs,
                                       batch=batch)
            for row in block]
    result = ExperimentResult(
        experiment_id="ext-blocking",
        title=(f"Session blocking at {utilization:.0%} of disk-only "
               f"capacity ({bit_rate / KB:.0f} KB/s streams)"),
        table=Table(columns=["DRAM budget", "configuration", "capacity",
                             "Erlang-B blocking"], rows=rows))
    return result


def _hybrid_curve_batch(
        items: list[tuple[str, float, int, float]]) -> list[Series]:
    """Vectorized twin of :func:`_hybrid_curve`: one lane per split.

    All ``k + 1`` splits of every requested popularity solve in a
    single :func:`repro.planner.batch.batch_max_streams` call.
    """
    lanes = []
    spans: list[tuple[str, list[float]]] = []
    for spec, bit_rate, k, dram_budget in items:
        params = SystemParameters.table3_default(n_streams=1,
                                                 bit_rate=bit_rate, k=k)
        popularity = BimodalPopularity.parse(spec)
        xs = [float(k_cache) for k_cache in range(k + 1)]
        for k_cache in range(k + 1):
            lanes.append((params, Configuration.hybrid(
                k_cache, k - k_cache, CachePolicy.STRIPED, popularity),
                dram_budget))
        spans.append((spec, xs))
    values = iter(batch_max_streams(lanes))
    return [Series(label=spec, x=xs, y=[next(values) for _ in xs])
            for spec, xs in spans]


@batchable(_hybrid_curve_batch)
def _hybrid_curve(item: tuple[str, float, int, float]) -> Series:
    """Worker: one popularity's split curve (picklable)."""
    spec, bit_rate, k, dram_budget = item
    params = SystemParameters.table3_default(n_streams=1, bit_rate=bit_rate,
                                             k=k)
    popularity = BimodalPopularity.parse(spec)
    curve = hybrid_split_curve(params, policy=CachePolicy.STRIPED,
                               popularity=popularity,
                               dram_budget=dram_budget)
    return Series(label=spec,
                  x=[float(d.k_cache) for d in curve],
                  y=[d.max_streams for d in curve])


def run_ext_hybrid(*, bit_rate: float = 100 * KB, k: int = 4,
                   dram_budget: float = 2 * GB,
                   jobs: int = 1, batch: bool = False) -> ExperimentResult:
    """Throughput of every buffer/cache split (future work #1)."""
    items = [(spec, bit_rate, k, dram_budget)
             for spec in ("1:99", "5:95", "20:80")]
    series = sweep_map(_hybrid_curve, items, jobs=jobs, batch=batch)
    result = ExperimentResult(
        experiment_id="ext-hybrid",
        title=(f"Hybrid buffer/cache split of a k={k} bank "
               f"({dram_budget / GB:.0f} GB DRAM)"),
        x_label="devices devoted to caching (rest buffer the disk)",
        y_label="admitted streams",
        series=series)
    for s in series:
        best = max(s.y)
        result.notes.append(
            f"{s.label}: best split k_cache="
            f"{s.x[s.y.index(best)]:.0f} ({best:.0f} streams)")
    return result


def _robustness_point(
        item: tuple[float, int, float, int, int]) -> float:
    """Worker: starvation at one buffer scale (seed rides in the item)."""
    import math as _math

    scale, n_streams, bit_rate, n_cycles, seed = item
    params = SystemParameters.table3_default(n_streams=n_streams,
                                             bit_rate=bit_rate, k=2)
    delay = max(0, _math.ceil(scale) - 1)
    report = simulate_direct_pipeline(
        params, n_cycles=n_cycles, latency_model="sampled",
        disk=FUTURE_DISK_2007, seed=seed, buffer_scale=scale,
        playback_delay_cycles=delay)
    return report.total_underflow_time


def run_ext_robustness(*, n_streams: int = 80, bit_rate: float = 1 * MB,
                       scales: tuple[float, ...] = (1.0, 1.25, 1.5, 2.0,
                                                    3.0),
                       n_cycles: int = 40, seed: int = 11,
                       jobs: int = 1, batch: bool = False) -> ExperimentResult:
    """Starvation under stochastic disk latencies vs buffer headroom.

    Deterministic analysis sizes buffers exactly; real per-IO latencies
    vary, so jitter appears at 1.0x.  Extra capacity only helps when a
    prefill policy actually fills it (see
    :func:`repro.simulation.pipelines.simulate_direct_pipeline`), so
    each padded point delays playback until the cushion accumulates.
    This quantifies the cushion a deployment should add.
    """
    items = [(scale, n_streams, bit_rate, n_cycles, seed)
             for scale in scales]
    xs = [float(scale) for scale in scales]
    ys = sweep_map(_robustness_point, items, jobs=jobs, batch=batch)
    result = ExperimentResult(
        experiment_id="ext-robustness",
        title="Starvation vs buffer headroom under sampled disk latencies",
        x_label="buffer scale (x analytical minimum)",
        y_label="total starvation time (s)",
        series=[Series(label="sampled latencies", x=xs, y=ys)])
    result.notes.append(
        "the analytical minimum is exact for deterministic (average) "
        "latencies; stochastic per-IO latencies need headroom — the "
        "same reason the paper charges worst-case MEMS latency")
    return result


def run_ext_regions(*, n_rate_points: int = 8, n_budget_points: int = 6,
                    popularity_spec: str = "5:95") -> ExperimentResult:
    """Configuration-choice map over the bit-rate x budget plane.

    The quantitative form of the paper's two design guidelines: which
    of plain / buffer / cache admits the most streams at each total
    spend.
    """
    import numpy as np

    from repro.core.regions import (
        configuration_map,
        render_configuration_map,
    )

    rates = np.logspace(np.log10(10 * KB), np.log10(10 * MB), n_rate_points)
    budgets = np.logspace(np.log10(30.0), np.log10(1000.0),
                          n_budget_points)
    popularity = BimodalPopularity.parse(popularity_spec)
    cells = configuration_map(rates, budgets, popularity=popularity)
    result = ExperimentResult(
        experiment_id="ext-regions",
        title=(f"Best configuration per (bit-rate, budget), popularity "
               f"{popularity_spec}"),
        x_label="total budget ($)",
        y_label="bit-rate (KB/s)",
    )
    result.notes.append("\n" + render_configuration_map(cells))
    for i, rate in enumerate(rates):
        result.series.append(Series(
            label=f"{float(rate) / KB:.3g}KB/s gain",
            x=[float(b) for b in budgets],
            y=[cells[i][j].gain_over_plain for j in range(len(budgets))]))
    return result


def run_ext_generations(*, bit_rate: float = 100 * KB,
                        n_streams: int = 2_400) -> ExperimentResult:
    """Buffer economics across MEMS device generations.

    The paper evaluates only the G3 device; this sweep swaps in the
    synthesized G1/G2 generations (catalog docstring) to show how the
    buffer's value grows as the technology matures — the paper's
    sensitivity theme ("as long as the MEMS device is an order of
    magnitude cheaper than DRAM and provides streaming bandwidths
    comparable to ... disk-drives").
    """
    from repro.core.cost import compare_buffer_costs
    from repro.devices.catalog import MEMS_G1, MEMS_G2

    rows: list[list[object]] = []
    for device in (MEMS_G1, MEMS_G2, MEMS_G3):
        # The bank must carry twice the stream load: size k accordingly.
        load = 2 * (n_streams + 1) * bit_rate
        k = max(2, int(np.ceil(load / device.transfer_rate)) + 1)
        params = SystemParameters.table3_default(
            n_streams=n_streams, bit_rate=bit_rate, k=k).replace(
            r_mems=device.transfer_rate,
            l_mems=device.max_access_time(),
            c_mems=device.cost_per_byte,
            size_mems=device.capacity)
        comparison = compare_buffer_costs(params)
        rows.append([device.name, k,
                     f"{device.transfer_rate / MB:.0f}",
                     f"{device.max_access_time() / MS:.2f}",
                     f"${comparison.cost_without:,.0f}",
                     f"${comparison.cost_with:,.0f}",
                     f"{comparison.percent_reduction:.0f}%"])
    result = ExperimentResult(
        experiment_id="ext-generations",
        title=(f"MEMS generations as a disk buffer "
               f"({n_streams} x {bit_rate / KB:.0f} KB/s streams)"),
        table=Table(columns=["device", "k", "MB/s", "max lat [ms]",
                             "cost w/o", "cost w/", "reduction"],
                    rows=rows))
    result.notes.append(
        "later generations need fewer devices and leave less DRAM "
        "behind; the economics hold across all three")
    return result


def run_ext_write_mix(*, bit_rate: float = 200 * KB,
                      dram_budget: float = 2 * GB,
                      k: int = 2) -> ExperimentResult:
    """Recording capacity as the viewer population grows (§3.1 ext.)."""
    params = SystemParameters.table3_default(n_streams=1, bit_rate=bit_rate,
                                             k=k)
    max_readers = streams_supported(params, dram_budget,
                                    configuration="buffer")
    xs: list[float] = []
    ys: list[float] = []
    for fraction in np.linspace(0.0, 0.9, 10):
        n_readers = int(fraction * max_readers)
        writers = max_writers_supported(params, n_readers=n_readers,
                                        dram_budget=dram_budget)
        xs.append(float(n_readers))
        ys.append(float(writers))
    result = ExperimentResult(
        experiment_id="ext-write-mix",
        title=(f"Recording feeds vs viewer population "
               f"({dram_budget / GB:.0f} GB DRAM, k={k})"),
        x_label="admitted viewers (readers)",
        y_label="admissible recording feeds (writers)",
        series=[Series(label="writers", x=xs, y=ys)])
    result.notes.append(
        "writers are single-buffered on the bank, so each displaced "
        "viewer buys more than one recording feed")
    return result
