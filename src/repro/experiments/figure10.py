"""Figure 10: throughput improvement vs the number of MEMS cache devices.

Section 5.2.4: striped cache management, total budget fixed at $100,
average bit-rate 100 KB/s, each G3 device caching 1% of the 1 TB
content.  As ``k`` grows the cache holds and serves more, but the
displaced DRAM (500 MB per device) shrinks the buffer, so each
popularity distribution has a unique optimal bank size; at 50:50 the
cache always degrades performance.
"""

from __future__ import annotations

from repro.core.cache_model import CachePolicy
from repro.core.parameters import SystemParameters
from repro.core.popularity import PAPER_DISTRIBUTIONS, BimodalPopularity
from repro.devices.catalog import DRAM_2007
from repro.experiments.base import ExperimentResult, Series
from repro.experiments.figure9 import _dram_budget
from repro.perf.parallel import batchable, sweep_map
from repro.planner import Configuration, default_planner
from repro.planner.batch import batch_max_streams
from repro.units import KB

#: The experiment's fixed total budget, dollars.
TOTAL_COST = 100.0
#: Average stream bit-rate, bytes/second.
BIT_RATE = 100 * KB


def _distribution_curve_batch(
        items: list[tuple[str, float, float, int, CachePolicy, float]],
) -> list[Series]:
    """Vectorized twin of :func:`_distribution_curve`.

    The scalar loop breaks at the first budget-exhausted ``k``; the
    MEMS cost grows monotonically in ``k``, so the same prefix of bank
    sizes survives here, and all surviving ``(distribution, k)`` cells
    solve in one :func:`repro.planner.batch.batch_max_streams` call.
    """
    lanes = []
    spans: list[tuple[str, list[float], float]] = []
    for spec, total_cost, bit_rate, max_devices, policy, baseline in items:
        popularity = BimodalPopularity.parse(spec)
        xs: list[float] = []
        for k in range(1, max_devices + 1):
            dram = _dram_budget(total_cost, k)
            if dram <= 0:
                break
            params = SystemParameters.table3_default(
                n_streams=1, bit_rate=bit_rate, k=k)
            lanes.append((params, Configuration.cache(policy, popularity),
                          dram))
            xs.append(float(k))
        spans.append((spec, xs, baseline))
    values = iter(batch_max_streams(lanes))
    series: list[Series] = []
    for spec, xs, baseline in spans:
        ys = [100.0 * (next(values) - baseline) / baseline for _ in xs]
        series.append(Series(label=spec, x=xs, y=ys))
    return series


@batchable(_distribution_curve_batch)
def _distribution_curve(
        item: tuple[str, float, float, int, CachePolicy, float]) -> Series:
    """Worker: one distribution's improvement curve (picklable)."""
    spec, total_cost, bit_rate, max_devices, policy, baseline = item
    planner = default_planner()
    popularity = BimodalPopularity.parse(spec)
    xs: list[float] = []
    ys: list[float] = []
    for k in range(1, max_devices + 1):
        dram = _dram_budget(total_cost, k)
        if dram <= 0:
            break
        params = SystemParameters.table3_default(
            n_streams=1, bit_rate=bit_rate, k=k)
        cached = planner.max_streams(
            params, Configuration.cache(policy, popularity), dram)
        xs.append(float(k))
        ys.append(100.0 * (cached - baseline) / baseline)
    return Series(label=spec, x=xs, y=ys)


def run(*, total_cost: float = TOTAL_COST, bit_rate: float = BIT_RATE,
        max_devices: int = 8,
        distributions: tuple[str, ...] = PAPER_DISTRIBUTIONS,
        policy: CachePolicy = CachePolicy.STRIPED,
        jobs: int = 1, batch: bool = False) -> ExperimentResult:
    """Percentage throughput improvement vs k, one curve per distribution."""
    planner = default_planner()
    baseline_params = SystemParameters.table3_default(
        n_streams=1, bit_rate=bit_rate, k=1)
    baseline = planner.max_streams(baseline_params, Configuration.direct(),
                                   total_cost / DRAM_2007.cost_per_byte)
    items = [(spec, total_cost, bit_rate, max_devices, policy, baseline)
             for spec in distributions]
    series = sweep_map(_distribution_curve, items, jobs=jobs, batch=batch)
    result = ExperimentResult(
        experiment_id="figure10",
        title=(f"Varying the size of the MEMS cache "
               f"({policy.value}, ${total_cost:.0f}, "
               f"{bit_rate / KB:.0f}KB/s)"),
        x_label="Number of MEMS devices (k)",
        y_label="Improvement in throughput (%)",
        series=series,
    )
    for s in series:
        if s.y:
            best = max(s.y)
            best_k = s.x[s.y.index(best)]
            result.notes.append(
                f"{s.label}: best {best:+.1f}% at k={best_k:.0f}")
    return result
