"""Figure 9: MEMS-cache server throughput vs popularity distribution.

Section 5.2: the total buffering+caching budget is fixed ($50 / $100 /
$200); each G3 MEMS device added to the cache costs $10 and therefore
displaces 500 MB of $20/GB DRAM.  At those budgets the paper uses
k = 1, 2, and 4 cache devices respectively.  Server throughput (max
admitted streams) is compared across three configurations — no cache,
replicated cache, striped cache — for popularity distributions 1:99,
5:95, 10:90, 20:80, and 50:50, at 10 KB/s (panel a) and 1 MB/s (panel
b).

All throughputs are solved by the shared memoized planner, so the
headline notes at the end of :func:`run` (which re-query cells already
in the table) and repeated panel runs replay cached solves.
"""

from __future__ import annotations

from repro.core.cache_model import CachePolicy
from repro.core.parameters import SystemParameters
from repro.core.popularity import PAPER_DISTRIBUTIONS, BimodalPopularity
from repro.devices.catalog import DRAM_2007, MEMS_G3
from repro.experiments.base import ExperimentResult, Table
from repro.perf.parallel import batchable, sweep_map
from repro.planner import Configuration, default_planner
from repro.planner.batch import batch_max_streams
from repro.units import KB, MB

#: (budget $, cache devices) pairs of the paper's experiment.
BUDGET_POINTS: tuple[tuple[float, int], ...] = ((50.0, 1), (100.0, 2),
                                                (200.0, 4))


def _dram_budget(total_cost: float, k_cache: int) -> float:
    """DRAM purchasable after buying ``k_cache`` MEMS devices."""
    mems_cost = k_cache * MEMS_G3.cost_per_device
    remaining = total_cost - mems_cost
    if remaining <= 0:
        return 0.0
    return remaining / DRAM_2007.cost_per_byte


def throughput(bit_rate: float, total_cost: float, k_cache: int,
               configuration: str, popularity: BimodalPopularity) -> int:
    """Admitted streams for one configuration at one budget.

    ``configuration`` is ``"none"``, ``"replicated"``, or ``"striped"``.
    """
    planner = default_planner()
    if configuration == "none":
        params = SystemParameters.table3_default(n_streams=1,
                                                 bit_rate=bit_rate, k=1)
        budget = total_cost / DRAM_2007.cost_per_byte
        return int(planner.max_streams(params, Configuration.direct(),
                                       budget))
    params = SystemParameters.table3_default(n_streams=1, bit_rate=bit_rate,
                                             k=k_cache)
    policy = (CachePolicy.REPLICATED if configuration == "replicated"
              else CachePolicy.STRIPED)
    budget = _dram_budget(total_cost, k_cache)
    if budget <= 0:
        return 0
    return int(planner.max_streams(
        params, Configuration.cache(policy, popularity), budget))


def _throughput_lane(bit_rate: float, total_cost: float, k_cache: int,
                     configuration: str, popularity: BimodalPopularity):
    """The ``(params, configuration, budget)`` lane one cell solves.

    ``None`` marks the budget-exhausted cells :func:`throughput`
    short-circuits to 0 streams.
    """
    if configuration == "none":
        params = SystemParameters.table3_default(n_streams=1,
                                                 bit_rate=bit_rate, k=1)
        return (params, Configuration.direct(),
                total_cost / DRAM_2007.cost_per_byte)
    budget = _dram_budget(total_cost, k_cache)
    if budget <= 0:
        return None
    params = SystemParameters.table3_default(n_streams=1, bit_rate=bit_rate,
                                             k=k_cache)
    policy = (CachePolicy.REPLICATED if configuration == "replicated"
              else CachePolicy.STRIPED)
    return params, Configuration.cache(policy, popularity), budget


def _distribution_rows_batch(
        items: list[tuple[str, float, tuple[tuple[float, int], ...]]],
) -> list[list[list[object]]]:
    """Vectorized twin of :func:`_distribution_rows`.

    Every cell of every requested distribution becomes one lane of a
    single :func:`repro.planner.batch.batch_max_streams` call (grouped
    by configuration kind inside), then the integer truncation and row
    assembly replay the scalar path.
    """
    lanes = []
    slots: list[tuple[int, int, int]] = []  # (item, row, column)
    blocks: list[list[list[object]]] = []
    for index, (spec, bit_rate, budget_points) in enumerate(items):
        popularity = BimodalPopularity.parse(spec)
        rows: list[list[object]] = []
        for row_index, config in enumerate(("none", "replicated",
                                            "striped")):
            row: list[object] = [spec, "w/o MEMS cache" if config == "none"
                                 else f"{config} cache"]
            for cost, k_cache in budget_points:
                lane = _throughput_lane(bit_rate, cost, k_cache, config,
                                        popularity)
                if lane is None:
                    row.append(0)
                else:
                    slots.append((index, row_index, len(row)))
                    lanes.append(lane)
                    row.append(None)  # filled from the batch solve below
            rows.append(row)
        blocks.append(rows)
    for (index, row_index, column), value in zip(slots,
                                                 batch_max_streams(lanes)):
        blocks[index][row_index][column] = int(value)
    return blocks


@batchable(_distribution_rows_batch)
def _distribution_rows(
        item: tuple[str, float, tuple[tuple[float, int], ...]],
) -> list[list[object]]:
    """Worker: one distribution's three table rows (picklable)."""
    spec, bit_rate, budget_points = item
    popularity = BimodalPopularity.parse(spec)
    rows: list[list[object]] = []
    for config in ("none", "replicated", "striped"):
        row: list[object] = [spec, "w/o MEMS cache" if config == "none"
                             else f"{config} cache"]
        for cost, k_cache in budget_points:
            row.append(throughput(bit_rate, cost, k_cache, config,
                                  popularity))
        rows.append(row)
    return rows


def run(*, bit_rate: float = 10 * KB,
        distributions: tuple[str, ...] = PAPER_DISTRIBUTIONS,
        budget_points: tuple[tuple[float, int], ...] = BUDGET_POINTS,
        jobs: int = 1, batch: bool = False) -> ExperimentResult:
    """One panel: a table of throughputs per distribution/config/budget."""
    columns = ["popularity", "configuration"] + [
        f"N @ ${cost:.0f} (k={k})" for cost, k in budget_points]
    items = [(spec, bit_rate, tuple(budget_points))
             for spec in distributions]
    rows = [row for block in sweep_map(_distribution_rows, items, jobs=jobs,
                                       batch=batch)
            for row in block]
    panel = "a" if bit_rate <= 100 * KB else "b"
    result = ExperimentResult(
        experiment_id=f"figure9{panel}",
        title=(f"MEMS cache performance, average bit-rate "
               f"{bit_rate / KB:.0f}KB/s"),
        table=Table(columns=columns, rows=rows),
    )
    # Headline checks the paper calls out.
    skewed = BimodalPopularity.parse("1:99")
    best_cost, best_k = budget_points[-1]
    repl = throughput(bit_rate, best_cost, best_k, "replicated", skewed)
    stri = throughput(bit_rate, best_cost, best_k, "striped", skewed)
    none = throughput(bit_rate, best_cost, best_k, "none", skewed)
    result.notes.append(
        f"at 1:99 and ${best_cost:.0f}: replicated {repl} vs striped {stri} "
        f"vs no-cache {none} streams (replication wins under heavy skew)")
    uniform = BimodalPopularity.parse("50:50")
    u_repl = throughput(bit_rate, best_cost, best_k, "replicated", uniform)
    u_none = throughput(bit_rate, best_cost, best_k, "none", uniform)
    result.notes.append(
        f"at 50:50 and ${best_cost:.0f}: replicated {u_repl} vs no-cache "
        f"{u_none} (caching is not cost-effective at uniform popularity)")
    return result


def run_panel_a(**kwargs) -> ExperimentResult:
    """Panel (a): 10 KB/s streams."""
    kwargs.setdefault("bit_rate", 10 * KB)
    return run(**kwargs)


def run_panel_b(**kwargs) -> ExperimentResult:
    """Panel (b): 1 MB/s streams."""
    kwargs.setdefault("bit_rate", 1 * MB)
    return run(**kwargs)
