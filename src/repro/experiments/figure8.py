"""Figure 8: reduction in total buffering cost vs number of streams.

Section 5.1.2: unlimited DRAM/MEMS storage with cost-per-byte MEMS
pricing (the per-device granularity is relaxed so the relationship
between parameters is visible).  The plotted quantity is
``COST_without - COST_with`` in dollars, per Equations 1-2, including
the MEMS bytes actually in flight.  Savings range from tens of dollars
for HDTV to tens of thousands for mp3, tracking the Figure 6 DRAM
reductions almost proportionally.
"""

from __future__ import annotations

from repro.core.cost import compare_buffer_costs
from repro.core.parameters import SystemParameters
from repro.devices.catalog import MEDIA_BITRATES
from repro.errors import AdmissionError
from repro.experiments.base import ExperimentResult, Series
from repro.experiments.figure6 import _stream_counts_for


def run(*, k: int = 2, bit_rates: dict[str, float] | None = None,
        max_streams: float = 1e5) -> ExperimentResult:
    """Sweep N for each bit-rate and record the dollar savings."""
    rates = bit_rates if bit_rates is not None else dict(MEDIA_BITRATES)
    series = []
    for name, bit_rate in rates.items():
        xs: list[float] = []
        ys: list[float] = []
        for n in _stream_counts_for(bit_rate, max_streams=max_streams):
            params = SystemParameters.table3_default(
                n_streams=n, bit_rate=bit_rate, k=k)
            try:
                comparison = compare_buffer_costs(params, pricing="per_byte")
            except AdmissionError:
                break
            if comparison.savings <= 0:
                # Log axes cannot show losses; the note records them.
                continue
            xs.append(float(n))
            ys.append(comparison.savings)
        series.append(Series(label=name, x=xs, y=ys))
    result = ExperimentResult(
        experiment_id="figure8",
        title="Reduction in the total buffering cost",
        x_label="Number of streams",
        y_label="Cost reduction ($)",
        series=series,
        log_x=True,
        log_y=True,
    )
    for s in series:
        if s.y:
            result.notes.append(
                f"{s.label}: peak saving ${max(s.y):,.0f} "
                f"(at N={s.x[s.y.index(max(s.y))]:.0f})")
    return result
