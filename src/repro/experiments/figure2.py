"""Figure 2: effective device throughput vs average IO size.

The paper plots the sustained throughput of the FutureDisk (charged its
*average* access latency) and the G3 MEMS device (charged its *maximum*
latency) as the IO size grows to 10 MB, to show that masking access
overheads requires far smaller IOs on MEMS than on disk.
"""

from __future__ import annotations

import numpy as np

from repro.devices.catalog import FUTURE_DISK_2007, MEMS_G3
from repro.devices.disk import DiskDrive
from repro.devices.mems import MemsDevice
from repro.experiments.base import ExperimentResult, Series
from repro.units import KB, MB


def run(*, disk: DiskDrive = FUTURE_DISK_2007, mems: MemsDevice = MEMS_G3,
        max_io_size: float = 10 * MB, n_points: int = 200) -> ExperimentResult:
    """Compute both throughput curves."""
    io_sizes = np.linspace(max_io_size / n_points, max_io_size, n_points)
    disk_curve = [disk.effective_throughput(float(s)) / MB for s in io_sizes]
    mems_curve = [mems.effective_throughput(float(s), worst_case=True) / MB
                  for s in io_sizes]
    x_kb = [float(s) / KB for s in io_sizes]
    result = ExperimentResult(
        experiment_id="figure2",
        title="Effective device throughputs",
        x_label="Average IO size (kB)",
        y_label="Device throughput (MB/s)",
        series=[
            Series(label="MEMS (max. latency)", x=x_kb, y=mems_curve),
            Series(label="Disk (avg. latency)", x=x_kb, y=disk_curve),
        ],
    )
    half_mems = _io_size_for_fraction(mems, 0.5, worst_case=True)
    half_disk = _io_size_for_fraction(disk, 0.5, worst_case=False)
    result.notes.append(
        f"IO size for 50% of peak: MEMS {half_mems / KB:.0f} kB, "
        f"disk {half_disk / KB:.0f} kB "
        f"(~{half_disk / half_mems:.1f}x smaller on MEMS)")
    return result


def _io_size_for_fraction(device, fraction: float, *,
                          worst_case: bool) -> float:
    return device.io_size_for_utilization(fraction, worst_case=worst_case)
