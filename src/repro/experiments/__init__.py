"""Reproduction of every table and figure in the paper's evaluation.

One module per artifact:

* :mod:`~repro.experiments.figure2` — effective device throughput vs
  average IO size.
* :mod:`~repro.experiments.figure6` — DRAM requirement vs stream count,
  without (a) and with (b) the MEMS buffer.
* :mod:`~repro.experiments.figure7` — percentage buffering-cost
  reduction vs latency ratio (a) and its contour regions (b).
* :mod:`~repro.experiments.figure8` — absolute buffering-cost reduction
  vs stream count.
* :mod:`~repro.experiments.figure9` — MEMS-cache server throughput vs
  popularity distribution at fixed budgets (a: 10 KB/s, b: 1 MB/s).
* :mod:`~repro.experiments.figure10` — throughput improvement vs MEMS
  bank size.
* :mod:`~repro.experiments.tables` — Tables 1 and 3 (device catalogs).

Figures are emitted as data series with CSV export and ASCII rendering
(:mod:`~repro.experiments.ascii_plot`); no plotting library is
required.  :mod:`~repro.experiments.registry` maps experiment ids to
runners and :mod:`~repro.experiments.cli` exposes them as the
``mems-repro`` command.
"""

from repro.experiments.base import ExperimentResult, Series, Table
from repro.experiments.registry import (
    EXPERIMENTS,
    get_experiment,
    run_all,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "Series",
    "Table",
    "EXPERIMENTS",
    "get_experiment",
    "run_all",
    "run_experiment",
]
