"""``mems-repro`` command-line entry point.

Usage::

    mems-repro list                 # enumerate reproducible artifacts
    mems-repro run figure6a         # render one artifact to stdout
    mems-repro run all              # render everything (incl. extensions)
    mems-repro run figure8 --csv out.csv   # also export the data series
    mems-repro experiments figure6a figure9a --jobs 4
                                    # selected artifacts, sweeps fanned
                                    # out over 4 worker processes
    mems-repro experiments --all --jobs 4 --csv out.csv
    mems-repro design --streams 1000 --bitrate 100 --budget 150
                                    # size a server across configurations
    mems-repro runtime list         # enumerate online-runtime scenarios
    mems-repro runtime device-failure --seed 7 --json metrics.json
                                    # run a scenario, print the dashboard
    mems-repro runtime all --jobs 4 # the whole scenario suite in parallel
    mems-repro runtime flash_crowd --emit-config flash.json
                                    # dump a scenario as declarative JSON
    mems-repro runtime --config flash.json
                                    # run a declarative config through the
                                    # service control plane
    mems-repro bench --preset small --out bench_out
                                    # record BENCH_<name>.json timings
    mems-repro bench --replay bench_out --compare benchmarks/baselines
                                    # regression gate (exit 1 if slower)
    mems-repro lint src             # repo-specific static analysis
    mems-repro lint --json --rule no-bare-assert src tests
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.experiments.registry import EXPERIMENTS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="mems-repro",
        description=("Reproduce the tables and figures of 'MEMS-based Disk "
                     "Buffer for Streaming Media Servers' (ICDE 2003)"))
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_cmd = sub.add_parser("run", help="run one experiment (or 'all')")
    run_cmd.add_argument("experiment",
                         help="experiment id (see 'list') or 'all'")
    run_cmd.add_argument("--csv", metavar="PATH",
                         help="also write the data series as CSV")
    run_cmd.add_argument("--width", type=int, default=76,
                         help="chart width in characters")
    run_cmd.add_argument("--height", type=int, default=20,
                         help="chart height in characters")
    exp_cmd = sub.add_parser(
        "experiments",
        help="run selected experiments, optionally in parallel (--jobs)")
    exp_cmd.add_argument("ids", nargs="*", metavar="ID",
                         help="experiment ids (see 'list')")
    exp_cmd.add_argument("--all", action="store_true",
                         help="run every experiment (incl. extensions)")
    exp_cmd.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes for the sweeps "
                              "(default 1 = serial; results identical)")
    exp_cmd.add_argument("--batch", action="store_true",
                         help="route sweeps through the vectorized batch "
                              "planner (results identical; composes with "
                              "--jobs)")
    exp_cmd.add_argument("--csv", metavar="PATH",
                         help="also write the data series as CSV")
    exp_cmd.add_argument("--width", type=int, default=76,
                         help="chart width in characters")
    exp_cmd.add_argument("--height", type=int, default=20,
                         help="chart height in characters")
    bench_cmd = sub.add_parser(
        "bench", help="run the timed benchmark workloads / regression gate")
    bench_cmd.add_argument("--preset", default="small",
                           choices=("tiny", "small", "large", "full"),
                           help="workload scale (default small; 'large' "
                                "is the million-session preset)")
    bench_cmd.add_argument("--workload", action="append", default=None,
                           metavar="NAME",
                           help="run only this workload (repeatable)")
    bench_cmd.add_argument("--repeats", type=int, default=1, metavar="N",
                           help="passes per workload; gated metrics keep "
                                "the best (default 1)")
    bench_cmd.add_argument("--out", metavar="DIR", default=None,
                           help="write BENCH_<name>.json records here")
    bench_cmd.add_argument("--replay", metavar="DIR", default=None,
                           help="skip running: load recorded BENCH_*.json "
                                "from DIR as the current results")
    bench_cmd.add_argument("--compare", metavar="BASELINE", default=None,
                           help="compare against a baseline dir (or one "
                                "BENCH_*.json); exit 1 on regression")
    bench_cmd.add_argument("--tolerance", type=float, default=10.0,
                           metavar="PCT",
                           help="allowed regression percentage "
                                "(default 10)")
    design_cmd = sub.add_parser(
        "design", help="size a server: compare plain / buffer / cache")
    design_cmd.add_argument("--streams", type=int, required=True,
                            help="concurrent streams to support")
    design_cmd.add_argument("--bitrate", type=float, required=True,
                            help="average stream bit-rate in KB/s")
    design_cmd.add_argument("--budget", type=float, default=None,
                            help="total buffering budget in dollars "
                                 "(omit to report requirements only)")
    design_cmd.add_argument("--popularity", default="5:95",
                            help="X:Y popularity for the cache option "
                                 "(default 5:95)")
    design_cmd.add_argument("--devices", type=int, default=2,
                            help="MEMS devices in the bank (default 2)")
    runtime_cmd = sub.add_parser(
        "runtime", help="run an online-server scenario (or 'list')")
    runtime_cmd.add_argument("scenario", nargs="?", default=None,
                             help="scenario name (see 'runtime list')")
    runtime_cmd.add_argument("--seed", type=int, default=0,
                             help="random seed (default 0)")
    runtime_cmd.add_argument("--horizon", type=float, default=None,
                             help="simulated seconds (scenario default)")
    runtime_cmd.add_argument("--json", metavar="PATH", default=None,
                             help="write the full result (events, "
                                  "migrations, metrics) as JSON")
    runtime_cmd.add_argument("--jobs", type=int, default=1, metavar="N",
                             help="worker processes for 'all' "
                                  "(default 1 = serial)")
    runtime_cmd.add_argument("--config", metavar="PATH", default=None,
                             help="run a declarative RuntimeConfig JSON "
                                  "file through the service control plane "
                                  "(instead of a named scenario)")
    runtime_cmd.add_argument("--emit-config", metavar="PATH", default=None,
                             help="with a scenario name: write its "
                                  "declarative RuntimeConfig JSON to PATH "
                                  "('-' for stdout) and exit")
    lint_cmd = sub.add_parser(
        "lint", help="run the repo-specific static-analysis pass")
    lint_cmd.add_argument("paths", nargs="*", default=["src"],
                          help="files or directories to lint "
                               "(default: src)")
    lint_cmd.add_argument("--json", action="store_true",
                          help="emit the machine-readable JSON report")
    lint_cmd.add_argument("--rule", action="append", default=None,
                          metavar="RULE",
                          help="run only this rule (repeatable; "
                               "see --list-rules)")
    lint_cmd.add_argument("--list-rules", action="store_true",
                          help="list the registered rules and exit")
    lint_cmd.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="parse files across N worker processes "
                               "(findings are byte-identical to serial)")
    lint_cmd.add_argument("--changed", action="store_true",
                          help="lint only the .py files git status "
                               "--porcelain reports as modified "
                               "(replaces the path list)")
    lint_cmd.add_argument("--sarif", metavar="PATH", default=None,
                          help="also write a SARIF 2.1.0 report to PATH")
    lint_cmd.add_argument("--no-cache", action="store_true",
                          help="ignore and do not write the incremental "
                               "result cache (.lint-cache.json)")
    lint_cmd.add_argument("--baseline", metavar="PATH", default=None,
                          help="ratchet baseline file to waive accepted "
                               "findings (default: the pyproject "
                               "'baseline' setting, if the file exists)")
    lint_cmd.add_argument("--write-baseline", metavar="PATH", default=None,
                          help="record the current findings as the "
                               "ratchet baseline at PATH and exit 0")
    return parser


def _run_lint(args: argparse.Namespace) -> int:
    """The ``lint`` subcommand (exit codes: 0 clean / 1 findings /
    2 usage error)."""
    from repro.analysis.cli import run_lint

    return run_lint(args.paths, rules=args.rule, json_output=args.json,
                    list_rules=args.list_rules, jobs=args.jobs,
                    changed=args.changed, sarif_path=args.sarif,
                    no_cache=args.no_cache, baseline=args.baseline,
                    write_baseline=args.write_baseline)


def _run_runtime(args: argparse.Namespace) -> int:
    """The ``runtime`` subcommand: run a scenario, print the dashboard."""
    from repro.errors import ConfigurationError
    from repro.runtime.scenarios import (
        SCENARIOS,
        run_scenario,
        run_scenario_batch,
    )
    from repro.service.scenarios import (
        build_service_scenario,
        require_known_scenario,
    )

    if args.config is not None:
        from repro.service.config import RuntimeConfig
        from repro.service.traffic import run_service

        if args.scenario is not None or args.emit_config is not None:
            raise ConfigurationError(
                "--config replaces the scenario name (and cannot be "
                "combined with --emit-config)")
        with open(args.config, encoding="utf-8") as handle:
            config = RuntimeConfig.from_json(handle.read())
        if args.horizon is not None:
            if args.horizon <= 0:
                raise ConfigurationError(
                    f"horizon must be > 0, got {args.horizon!r}")
            config = config.replace(horizon=args.horizon)
        result = run_service(config.replace(seed=args.seed)
                             if args.seed != config.seed else config)
        print(result.dashboard())
        print()
        print(result.summary())
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(result.to_json(indent=2))
            print(f"wrote {args.json}", file=sys.stderr)
        return 0
    if args.scenario is None:
        raise ConfigurationError(
            "runtime needs a scenario name, 'list', 'all', or --config "
            "(see 'runtime list')")
    if args.emit_config is not None:
        config = build_service_scenario(args.scenario, seed=args.seed,
                                        horizon=args.horizon)
        text = config.to_json(indent=2)
        if args.emit_config == "-":
            print(text)
        else:
            with open(args.emit_config, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.emit_config}", file=sys.stderr)
        return 0
    if args.scenario == "list":
        for name, factory in SCENARIOS.items():
            doc = (factory.__doc__ or "").strip().splitlines()[0]
            print(f"{name:>20}  {doc}")
        return 0
    if args.scenario == "all":
        results = run_scenario_batch(seed=args.seed, horizon=args.horizon,
                                     jobs=args.jobs)
        for name, result in results.items():
            print(f"=== {name} ===")
            print(result.dashboard())
            print()
            print(result.summary())
            print()
        if args.json:
            import json as _json

            payload = {name: _json.loads(result.to_json())
                       for name, result in results.items()}
            with open(args.json, "w", encoding="utf-8") as handle:
                _json.dump(payload, handle, indent=2)
            print(f"wrote {args.json}", file=sys.stderr)
        return 0
    # Fail on a bad name before anything heavy runs — and through the
    # one canonical validator, so the error text has a single home.
    require_known_scenario(args.scenario)
    result = run_scenario(args.scenario, seed=args.seed,
                          horizon=args.horizon)
    print(result.dashboard())
    print()
    print(result.summary())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(result.to_json(indent=2))
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _run_experiments(args: argparse.Namespace) -> int:
    """The ``experiments`` subcommand: selected ids, optionally parallel."""
    from repro.errors import ConfigurationError
    from repro.experiments.registry import (
        run_all,
        run_experiment,
        run_selected,
    )

    if args.all:
        if args.ids:
            raise ConfigurationError(
                "pass experiment ids or --all, not both")
        results = run_all(jobs=args.jobs, batch=args.batch)
    elif not args.ids:
        raise ConfigurationError(
            "no experiments selected; pass ids (see 'list') or --all")
    elif len(args.ids) == 1:
        # A single experiment parallelises *inside* its sweep loops.
        experiment_id = args.ids[0]
        results = {experiment_id: run_experiment(experiment_id,
                                                 jobs=args.jobs,
                                                 batch=args.batch)}
    else:
        results = run_selected(list(args.ids), jobs=args.jobs,
                               batch=args.batch)
    for experiment_id, result in results.items():
        print(result.render(width=args.width, height=args.height))
        print()
        if args.csv:
            suffix = "" if len(results) == 1 else f".{experiment_id}"
            path = result.write_csv(f"{args.csv}{suffix}")
            print(f"wrote {path}", file=sys.stderr)
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    """The ``bench`` subcommand: record timings and/or gate a regression."""
    from repro.perf.bench import (
        METRIC_DIRECTIONS,
        compare_records,
        load_records,
        run_workloads,
        write_records,
    )

    if args.replay is not None:
        records_by_name = load_records(args.replay)
        if args.workload:
            records_by_name = {name: record
                               for name, record in records_by_name.items()
                               if name in set(args.workload)}
        records = list(records_by_name.values())
        print(f"replaying {len(records)} recorded workload(s) from "
              f"{args.replay}")
    else:
        records = run_workloads(args.workload, preset=args.preset,
                                repeats=args.repeats)
        records_by_name = {record.name: record for record in records}
    for record in records:
        gated = {name: value for name, value in record.metrics.items()
                 if name in METRIC_DIRECTIONS}
        info = {name: value for name, value in record.metrics.items()
                if name not in METRIC_DIRECTIONS}
        parts = [f"{name}={value:.6g}" for name, value in gated.items()]
        parts += [f"{name}={value:.6g}*" for name, value in info.items()]
        print(f"{record.name:>18} [{record.preset}]  {'  '.join(parts)}")
    if records and args.replay is None and args.out:
        for path in write_records(records, args.out):
            print(f"wrote {path}", file=sys.stderr)
    if args.compare is None:
        return 0
    baseline = load_records(args.compare)
    comparisons, regressions = compare_records(
        records_by_name, baseline, args.tolerance)
    print()
    print(f"comparing against {args.compare} "
          f"(tolerance {args.tolerance:g}%):")
    for comparison in comparisons:
        flag = "REGRESSION" if comparison in regressions else "ok"
        print(f"  [{flag:>10}] {comparison.describe()}")
    if regressions:
        print(f"{len(regressions)} regression(s) beyond "
              f"{args.tolerance:g}%", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


def _run_design(args: argparse.Namespace) -> int:
    """The ``design`` subcommand: requirement and capacity report."""
    from repro.core.buffer_model import design_mems_buffer
    from repro.core.cache_model import CachePolicy, design_mems_cache
    from repro.core.parameters import SystemParameters
    from repro.core.popularity import BimodalPopularity
    from repro.core.theorems import min_buffer_disk_dram
    from repro.devices.catalog import DRAM_2007
    from repro.units import KB, bytes_to_human

    bit_rate = args.bitrate * KB
    params = SystemParameters.table3_default(
        n_streams=args.streams, bit_rate=bit_rate, k=args.devices)
    popularity = BimodalPopularity.parse(args.popularity)
    print(f"Sizing for {args.streams} streams at {args.bitrate:g} KB/s "
          f"({params.disk_utilization:.0%} of disk bandwidth), "
          f"k={args.devices} G3 MEMS devices available")
    print()
    rows: list[tuple[str, float, float]] = []  # label, dram, mems $
    rows.append(("plain disk-to-DRAM",
                 args.streams * min_buffer_disk_dram(params), 0.0))
    buffer_design = design_mems_buffer(params, quantise=False)
    rows.append(("MEMS buffer", buffer_design.total_dram,
                 params.mems_bank_cost))
    for policy in (CachePolicy.REPLICATED, CachePolicy.STRIPED):
        cache_design = design_mems_cache(params, policy, popularity)
        rows.append((f"MEMS cache ({policy.value})", cache_design.total_dram,
                     params.mems_bank_cost))
    print(f"{'configuration':>26} | {'DRAM needed':>12} | "
          f"{'MEMS cost':>9} | {'total cost':>10}")
    print("-" * 68)
    for label, dram, mems_cost in rows:
        total = dram * DRAM_2007.cost_per_byte + mems_cost
        print(f"{label:>26} | {bytes_to_human(dram):>12} | "
              f"${mems_cost:>8.2f} | ${total:>9.2f}")
    if args.budget is not None:
        from repro.planner.throughput import streams_supported

        print()
        print(f"Throughput at a ${args.budget:g} total budget:")
        base = params.replace(n_streams=1)
        capacities = {
            "plain disk-to-DRAM": streams_supported(
                base.replace(k=1),
                args.budget / DRAM_2007.cost_per_byte),
        }
        remaining = args.budget - params.mems_bank_cost
        if remaining > 0:
            dram_budget = remaining / DRAM_2007.cost_per_byte
            capacities["MEMS buffer"] = streams_supported(
                base, dram_budget, configuration="buffer")
            capacities["MEMS cache (replicated)"] = streams_supported(
                base, dram_budget, configuration="cache",
                policy=CachePolicy.REPLICATED, popularity=popularity)
            capacities["MEMS cache (striped)"] = streams_supported(
                base, dram_budget, configuration="cache",
                policy=CachePolicy.STRIPED, popularity=popularity)
        for label, capacity in capacities.items():
            marker = " <- requested" if capacity >= args.streams else ""
            print(f"  {label:>26}: {capacity} streams{marker}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "lint":
        # Lint has its own exit-code contract (usage errors exit 2,
        # findings exit 1); it must not fold into the ReproError -> 1
        # mapping below.
        return _run_lint(args)
    try:
        if args.command == "list":
            for experiment_id in EXPERIMENTS:
                print(experiment_id)
            return 0
        if args.command == "design":
            return _run_design(args)
        if args.command == "runtime":
            return _run_runtime(args)
        if args.command == "experiments":
            return _run_experiments(args)
        if args.command == "bench":
            return _run_bench(args)
        if args.experiment == "all":
            ids = list(EXPERIMENTS)
        else:
            ids = [args.experiment]
        for experiment_id in ids:
            result = run_experiment(experiment_id)
            print(result.render(width=args.width, height=args.height))
            print()
            if args.csv:
                suffix = "" if len(ids) == 1 else f".{experiment_id}"
                path = result.write_csv(f"{args.csv}{suffix}")
                print(f"wrote {path}", file=sys.stderr)
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
