"""``mems-repro`` command-line entry point.

Usage::

    mems-repro list                 # enumerate reproducible artifacts
    mems-repro run figure6a         # render one artifact to stdout
    mems-repro run all              # render everything (incl. extensions)
    mems-repro run figure8 --csv out.csv   # also export the data series
    mems-repro design --streams 1000 --bitrate 100 --budget 150
                                    # size a server across configurations
    mems-repro runtime list         # enumerate online-runtime scenarios
    mems-repro runtime device-failure --seed 7 --json metrics.json
                                    # run a scenario, print the dashboard
    mems-repro lint src             # repo-specific static analysis
    mems-repro lint --json --rule no-bare-assert src tests
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.experiments.registry import EXPERIMENTS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="mems-repro",
        description=("Reproduce the tables and figures of 'MEMS-based Disk "
                     "Buffer for Streaming Media Servers' (ICDE 2003)"))
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_cmd = sub.add_parser("run", help="run one experiment (or 'all')")
    run_cmd.add_argument("experiment",
                         help="experiment id (see 'list') or 'all'")
    run_cmd.add_argument("--csv", metavar="PATH",
                         help="also write the data series as CSV")
    run_cmd.add_argument("--width", type=int, default=76,
                         help="chart width in characters")
    run_cmd.add_argument("--height", type=int, default=20,
                         help="chart height in characters")
    design_cmd = sub.add_parser(
        "design", help="size a server: compare plain / buffer / cache")
    design_cmd.add_argument("--streams", type=int, required=True,
                            help="concurrent streams to support")
    design_cmd.add_argument("--bitrate", type=float, required=True,
                            help="average stream bit-rate in KB/s")
    design_cmd.add_argument("--budget", type=float, default=None,
                            help="total buffering budget in dollars "
                                 "(omit to report requirements only)")
    design_cmd.add_argument("--popularity", default="5:95",
                            help="X:Y popularity for the cache option "
                                 "(default 5:95)")
    design_cmd.add_argument("--devices", type=int, default=2,
                            help="MEMS devices in the bank (default 2)")
    runtime_cmd = sub.add_parser(
        "runtime", help="run an online-server scenario (or 'list')")
    runtime_cmd.add_argument("scenario",
                             help="scenario name (see 'runtime list')")
    runtime_cmd.add_argument("--seed", type=int, default=0,
                             help="random seed (default 0)")
    runtime_cmd.add_argument("--horizon", type=float, default=None,
                             help="simulated seconds (scenario default)")
    runtime_cmd.add_argument("--json", metavar="PATH", default=None,
                             help="write the full result (events, "
                                  "migrations, metrics) as JSON")
    lint_cmd = sub.add_parser(
        "lint", help="run the repo-specific static-analysis pass")
    lint_cmd.add_argument("paths", nargs="*", default=["src"],
                          help="files or directories to lint "
                               "(default: src)")
    lint_cmd.add_argument("--json", action="store_true",
                          help="emit the machine-readable JSON report")
    lint_cmd.add_argument("--rule", action="append", default=None,
                          metavar="RULE",
                          help="run only this rule (repeatable; "
                               "see --list-rules)")
    lint_cmd.add_argument("--list-rules", action="store_true",
                          help="list the registered rules and exit")
    return parser


def _run_lint(args: argparse.Namespace) -> int:
    """The ``lint`` subcommand (exit codes: 0 clean / 1 findings /
    2 usage error)."""
    from repro.analysis.cli import run_lint

    return run_lint(args.paths, rules=args.rule, json_output=args.json,
                    list_rules=args.list_rules)


def _run_runtime(args: argparse.Namespace) -> int:
    """The ``runtime`` subcommand: run a scenario, print the dashboard."""
    from repro.runtime.scenarios import SCENARIOS, run_scenario

    if args.scenario == "list":
        for name, factory in SCENARIOS.items():
            doc = (factory.__doc__ or "").strip().splitlines()[0]
            print(f"{name:>20}  {doc}")
        return 0
    result = run_scenario(args.scenario, seed=args.seed,
                          horizon=args.horizon)
    print(result.dashboard())
    print()
    print(result.summary())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(result.to_json(indent=2))
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _run_design(args: argparse.Namespace) -> int:
    """The ``design`` subcommand: requirement and capacity report."""
    from repro.core.buffer_model import design_mems_buffer
    from repro.core.cache_model import CachePolicy, design_mems_cache
    from repro.core.parameters import SystemParameters
    from repro.core.popularity import BimodalPopularity
    from repro.core.theorems import min_buffer_disk_dram
    from repro.devices.catalog import DRAM_2007
    from repro.units import KB, bytes_to_human

    bit_rate = args.bitrate * KB
    params = SystemParameters.table3_default(
        n_streams=args.streams, bit_rate=bit_rate, k=args.devices)
    popularity = BimodalPopularity.parse(args.popularity)
    print(f"Sizing for {args.streams} streams at {args.bitrate:g} KB/s "
          f"({params.disk_utilization:.0%} of disk bandwidth), "
          f"k={args.devices} G3 MEMS devices available")
    print()
    rows: list[tuple[str, float, float]] = []  # label, dram, mems $
    rows.append(("plain disk-to-DRAM",
                 args.streams * min_buffer_disk_dram(params), 0.0))
    buffer_design = design_mems_buffer(params, quantise=False)
    rows.append(("MEMS buffer", buffer_design.total_dram,
                 params.mems_bank_cost))
    for policy in (CachePolicy.REPLICATED, CachePolicy.STRIPED):
        cache_design = design_mems_cache(params, policy, popularity)
        rows.append((f"MEMS cache ({policy.value})", cache_design.total_dram,
                     params.mems_bank_cost))
    print(f"{'configuration':>26} | {'DRAM needed':>12} | "
          f"{'MEMS cost':>9} | {'total cost':>10}")
    print("-" * 68)
    for label, dram, mems_cost in rows:
        total = dram * DRAM_2007.cost_per_byte + mems_cost
        print(f"{label:>26} | {bytes_to_human(dram):>12} | "
              f"${mems_cost:>8.2f} | ${total:>9.2f}")
    if args.budget is not None:
        from repro.planner.throughput import streams_supported

        print()
        print(f"Throughput at a ${args.budget:g} total budget:")
        base = params.replace(n_streams=1)
        capacities = {
            "plain disk-to-DRAM": streams_supported(
                base.replace(k=1),
                args.budget / DRAM_2007.cost_per_byte),
        }
        remaining = args.budget - params.mems_bank_cost
        if remaining > 0:
            dram_budget = remaining / DRAM_2007.cost_per_byte
            capacities["MEMS buffer"] = streams_supported(
                base, dram_budget, configuration="buffer")
            capacities["MEMS cache (replicated)"] = streams_supported(
                base, dram_budget, configuration="cache",
                policy=CachePolicy.REPLICATED, popularity=popularity)
            capacities["MEMS cache (striped)"] = streams_supported(
                base, dram_budget, configuration="cache",
                policy=CachePolicy.STRIPED, popularity=popularity)
        for label, capacity in capacities.items():
            marker = " <- requested" if capacity >= args.streams else ""
            print(f"  {label:>26}: {capacity} streams{marker}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "lint":
        # Lint has its own exit-code contract (usage errors exit 2,
        # findings exit 1); it must not fold into the ReproError -> 1
        # mapping below.
        return _run_lint(args)
    try:
        if args.command == "list":
            for experiment_id in EXPERIMENTS:
                print(experiment_id)
            return 0
        if args.command == "design":
            return _run_design(args)
        if args.command == "runtime":
            return _run_runtime(args)
        if args.experiment == "all":
            ids = list(EXPERIMENTS)
        else:
            ids = [args.experiment]
        for experiment_id in ids:
            result = run_experiment(experiment_id)
            print(result.render(width=args.width, height=args.height))
            print()
            if args.csv:
                suffix = "" if len(ids) == 1 else f".{experiment_id}"
                path = result.write_csv(f"{args.csv}{suffix}")
                print(f"wrote {path}", file=sys.stderr)
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
