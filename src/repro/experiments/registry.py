"""Experiment registry: id -> runner."""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigurationError
from repro.experiments import (
    extensions,
    figure2,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    tables,
)
from repro.experiments.base import ExperimentResult

#: The paper's own artifacts, in paper order.
PAPER_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "table1": tables.run_table1,
    "figure2": figure2.run,
    "table3": tables.run_table3,
    "figure6a": lambda: figure6.run(with_mems=False),
    "figure6b": lambda: figure6.run(with_mems=True),
    "figure7a": figure7.run_panel_a,
    "figure7b": figure7.run_panel_b,
    "figure8": figure8.run,
    "figure9a": figure9.run_panel_a,
    "figure9b": figure9.run_panel_b,
    "figure10": figure10.run,
}

#: Extension studies beyond the paper (see DESIGN.md section 6).
EXTENSION_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "ext-startup": extensions.run_ext_startup,
    "ext-placement": extensions.run_ext_placement,
    "ext-sptf": extensions.run_ext_sptf,
    "ext-blocking": extensions.run_ext_blocking,
    "ext-hybrid": extensions.run_ext_hybrid,
    "ext-robustness": extensions.run_ext_robustness,
    "ext-regions": extensions.run_ext_regions,
    "ext-generations": extensions.run_ext_generations,
    "ext-write-mix": extensions.run_ext_write_mix,
}

#: All reproducible artifacts.
EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    **PAPER_EXPERIMENTS,
    **EXTENSION_EXPERIMENTS,
}


def get_experiment(experiment_id: str) -> Callable[[], ExperimentResult]:
    """Look up a runner; raise a helpful error for unknown ids."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{', '.join(EXPERIMENTS)}") from None


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id."""
    return get_experiment(experiment_id)()


def run_all(*, include_extensions: bool = True) -> dict[str, ExperimentResult]:
    """Run every experiment, in paper order (extensions last)."""
    selected = EXPERIMENTS if include_extensions else PAPER_EXPERIMENTS
    return {experiment_id: runner()
            for experiment_id, runner in selected.items()}
