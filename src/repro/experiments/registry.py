"""Experiment registry: id -> runner."""

from __future__ import annotations

import functools
import inspect
from collections.abc import Callable

from repro.errors import ConfigurationError
from repro.experiments import (
    extensions,
    figure2,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    tables,
)
from repro.experiments.base import ExperimentResult
from repro.perf.parallel import sweep_map

#: The paper's own artifacts, in paper order.
PAPER_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "table1": tables.run_table1,
    "figure2": figure2.run,
    "table3": tables.run_table3,
    "figure6a": functools.partial(figure6.run, with_mems=False),
    "figure6b": functools.partial(figure6.run, with_mems=True),
    "figure7a": figure7.run_panel_a,
    "figure7b": figure7.run_panel_b,
    "figure8": figure8.run,
    "figure9a": figure9.run_panel_a,
    "figure9b": figure9.run_panel_b,
    "figure10": figure10.run,
}

#: Extension studies beyond the paper (see DESIGN.md section 6).
EXTENSION_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "ext-startup": extensions.run_ext_startup,
    "ext-placement": extensions.run_ext_placement,
    "ext-sptf": extensions.run_ext_sptf,
    "ext-blocking": extensions.run_ext_blocking,
    "ext-hybrid": extensions.run_ext_hybrid,
    "ext-robustness": extensions.run_ext_robustness,
    "ext-regions": extensions.run_ext_regions,
    "ext-generations": extensions.run_ext_generations,
    "ext-write-mix": extensions.run_ext_write_mix,
}

#: All reproducible artifacts.
EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    **PAPER_EXPERIMENTS,
    **EXTENSION_EXPERIMENTS,
}


def get_experiment(experiment_id: str) -> Callable[[], ExperimentResult]:
    """Look up a runner; raise a helpful error for unknown ids."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{', '.join(EXPERIMENTS)}") from None


def _accepts_option(runner: Callable[..., ExperimentResult],
                    name: str) -> bool:
    """Whether a runner's sweep loops take the ``name`` parameter."""
    try:
        parameters = inspect.signature(runner).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return False
    if name in parameters:
        return True
    # Panel wrappers forward **kwargs to an option-aware run().
    return any(p.kind is inspect.Parameter.VAR_KEYWORD
               for p in parameters.values())


def _accepts_jobs(runner: Callable[..., ExperimentResult]) -> bool:
    """Whether a runner's sweep loops take a ``jobs`` parameter."""
    return _accepts_option(runner, "jobs")


def run_experiment(experiment_id: str, *, jobs: int = 1,
                   batch: bool = False) -> ExperimentResult:
    """Run one experiment by id.

    ``jobs`` fans the runner's sweep loops out over worker processes
    (see :func:`repro.perf.parallel.sweep_map`); ``batch`` routes them
    through the vectorized batch planner where a worker has a
    :func:`~repro.perf.parallel.batchable` twin.  Runners without a
    sweep axis ignore both.  Results are identical at any setting.
    """
    runner = get_experiment(experiment_id)
    kwargs: dict[str, object] = {}
    if jobs != 1 and _accepts_jobs(runner):
        kwargs["jobs"] = jobs
    if batch and _accepts_option(runner, "batch"):
        kwargs["batch"] = True
    return runner(**kwargs)


def _run_one(item: str | tuple[str, bool]) -> ExperimentResult:
    """Worker for the batch sweep: one experiment, serial inside."""
    if isinstance(item, tuple):
        experiment_id, batch = item
        return run_experiment(experiment_id, batch=batch)
    return get_experiment(item)()


def run_selected(ids: list[str], *, jobs: int = 1,
                 batch: bool = False) -> dict[str, ExperimentResult]:
    """Run several experiments, optionally in parallel.

    ``jobs`` parallelises *across* experiments (each worker runs one
    experiment serially — no nested pools); ``batch`` turns on the
    vectorized solve paths *inside* each experiment.  The returned
    dict and every result are identical to a serial scalar run.
    """
    for experiment_id in ids:
        get_experiment(experiment_id)  # validate before forking
    items: list[str | tuple[str, bool]] = \
        [(experiment_id, True) for experiment_id in ids] if batch \
        else list(ids)
    results = sweep_map(_run_one, items, jobs=jobs)
    return dict(zip(ids, results))


def run_all(*, include_extensions: bool = True, jobs: int = 1,
            batch: bool = False) -> dict[str, ExperimentResult]:
    """Run every experiment, in paper order (extensions last)."""
    selected = EXPERIMENTS if include_extensions else PAPER_EXPERIMENTS
    return run_selected(list(selected), jobs=jobs, batch=batch)
