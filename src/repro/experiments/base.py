"""Experiment result containers and CSV export."""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError


@dataclass
class Series:
    """One labelled data series (a line in a figure)."""

    label: str
    x: list[float]
    y: list[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ConfigurationError(
                f"series {self.label!r}: x has {len(self.x)} points but "
                f"y has {len(self.y)}")


@dataclass
class Table:
    """A rectangular table (for the paper's Tables and bar figures)."""

    columns: list[str]
    rows: list[list[object]]

    def __post_init__(self) -> None:
        for i, row in enumerate(self.rows):
            if len(row) != len(self.columns):
                raise ConfigurationError(
                    f"row {i} has {len(row)} cells for "
                    f"{len(self.columns)} columns")

    def render(self) -> str:
        """Fixed-width text rendering."""
        cells = [self.columns] + [[_fmt(c) for c in row] for row in self.rows]
        widths = [max(len(row[j]) for row in cells)
                  for j in range(len(self.columns))]
        lines = []
        header = " | ".join(c.ljust(w) for c, w in zip(cells[0], widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        # Truthiness, not ==: only an exact zero (either sign) prints
        # as "0"; near-zero magnitudes keep their digits below.
        if not value:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.4g}"
        return f"{value:,.4g}"
    return str(value)


@dataclass
class ExperimentResult:
    """The output of one experiment runner.

    Carries either line ``series`` (figure-style artifacts) or a
    ``table`` (table-style artifacts), or both, plus free-form notes
    comparing against the paper.
    """

    experiment_id: str
    title: str
    x_label: str = ""
    y_label: str = ""
    series: list[Series] = field(default_factory=list)
    table: Table | None = None
    #: Axis scaling hints for the ASCII renderer.
    log_x: bool = False
    log_y: bool = False
    notes: list[str] = field(default_factory=list)

    def to_csv(self) -> str:
        """CSV export: long format for series, verbatim for tables."""
        out = io.StringIO()
        writer = csv.writer(out, lineterminator="\n")
        if self.series:
            writer.writerow(["series", self.x_label or "x",
                             self.y_label or "y"])
            for series in self.series:
                for x, y in zip(series.x, series.y):
                    writer.writerow([series.label, repr(x), repr(y)])
        elif self.table is not None:
            writer.writerow(self.table.columns)
            writer.writerows(self.table.rows)
        return out.getvalue()

    def write_csv(self, path: str | Path) -> Path:
        """Write :meth:`to_csv` to ``path`` and return it."""
        path = Path(path)
        path.write_text(self.to_csv())
        return path

    def render(self, *, width: int = 76, height: int = 20) -> str:
        """Human-readable rendering: ASCII chart and/or table plus notes."""
        from repro.experiments.ascii_plot import render_chart

        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.series:
            parts.append(render_chart(self, width=width, height=height))
        if self.table is not None:
            parts.append(self.table.render())
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)
