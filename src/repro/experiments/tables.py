"""Tables 1 and 3: storage-media characteristics.

These artifacts are catalog data rather than computed results, but the
runners regenerate them from the *device models* (not hard-coded
strings) so any drift between the catalog and the models is caught.
"""

from __future__ import annotations

from repro.devices.catalog import (
    DISK_2002,
    DRAM_2002,
    DRAM_2007,
    FUTURE_DISK_2007,
    MEMS_G3,
    device_table_2002,
    device_table_2007,
)
from repro.experiments.base import ExperimentResult, Table
from repro.perf.parallel import sweep_map
from repro.units import GB, MB, MS


def _range_text(pair: tuple[float, float] | None, unit: str = "") -> str:
    if pair is None:
        return "n/a"
    lo, hi = pair
    if lo == hi:
        return f"{lo:g}{unit}"
    return f"{lo:g}-{hi:g}{unit}"


def _year_rows(year: str) -> list[list[object]]:
    """Worker: one catalog year's rows, regenerated from the models."""
    table = device_table_2002() if year == "2002" else device_table_2007()
    rows: list[list[object]] = []
    for row in table:
        rows.append([
            year, row.medium,
            "n/a" if row.capacity_gb is None else f"{row.capacity_gb:g}",
            _range_text(row.access_time_ms),
            _range_text(row.bandwidth_mb_s),
            "n/a" if row.cost_per_gb is None else f"{row.cost_per_gb:g}",
            _range_text(row.cost_per_device),
        ])
    return rows


def run_table1(*, jobs: int = 1, batch: bool = False) -> ExperimentResult:
    """Table 1: 2002 and 2007 characteristics of DRAM, MEMS and disk."""
    columns = ["year", "medium", "capacity [GB]", "access time [ms]",
               "bandwidth [MB/s]", "cost/GB [$]", "cost/device [$]"]
    rows = [row for block in sweep_map(_year_rows, ["2002", "2007"],
                                       jobs=jobs, batch=batch)
            for row in block]
    result = ExperimentResult(
        experiment_id="table1",
        title="Storage media characteristics (2002 actual / 2007 predicted)",
        table=Table(columns=columns, rows=rows))
    # Cross-check the catalog rows against the instantiated models.
    checks = [
        ("2002 disk bandwidth", DISK_2002.transfer_rate / MB, 55),
        ("2002 DRAM cost/GB", DRAM_2002.cost_per_byte * GB, 200),
        ("2007 MEMS capacity", MEMS_G3.capacity / GB, 10),
        ("2007 disk capacity", FUTURE_DISK_2007.capacity / GB, 1000),
        ("2007 DRAM cost/GB", DRAM_2007.cost_per_byte * GB, 20),
    ]
    for label, actual, expected in checks:
        status = "ok" if abs(actual - expected) < 1e-6 * max(expected, 1) \
            else f"MISMATCH (model {actual:g})"
        result.notes.append(f"{label} = {expected:g}: {status}")
    return result


def run_table3() -> ExperimentResult:
    """Table 3: the 2007 case-study devices, read off the models."""
    disk = FUTURE_DISK_2007
    mems = MEMS_G3
    dram = DRAM_2007
    columns = ["parameter", "FutureDisk", "G3 MEMS", "DRAM"]
    rows: list[list[object]] = [
        ["RPM", f"{disk.rpm:,.0f}", "-", "-"],
        ["Max. bandwidth [MB/s]", f"{disk.transfer_rate / MB:g}",
         f"{mems.transfer_rate / MB:g}", f"{dram.transfer_rate / MB:,.0f}"],
        ["Average seek [ms]",
         f"{disk.seek_curve.average_seek_time() / MS:.1f}", "-", "-"],
        ["Full stroke seek [ms]", f"{disk.seek_curve.t_full / MS:.1f}",
         f"{mems.full_stroke_x / MS:.2f}", "-"],
        ["X settle time [ms]", "-", f"{mems.settle_x / MS:.2f}", "-"],
        ["Capacity per device [GB]", f"{disk.capacity / GB:g}",
         f"{mems.capacity / GB:g}", f"{dram.capacity / GB:g}"],
        ["Cost/GB [$]", f"{disk.cost_per_byte * GB:g}",
         f"{mems.cost_per_byte * GB:g}", f"{dram.cost_per_byte * GB:g}"],
        ["Cost/device [$]", "100-300", f"{mems.cost_per_device:g}", "50-200"],
    ]
    result = ExperimentResult(
        experiment_id="table3",
        title="Performance characteristics of storage devices in 2007",
        table=Table(columns=columns, rows=rows))
    ratio = (disk.scheduled_latency() / mems.max_access_time())
    result.notes.append(
        f"scheduler-determined latency ratio L_disk/L_mems = {ratio:.2f} "
        "(the paper reports ~5 for this pair)")
    result.notes.append(
        "capacity-per-device cells follow Table 1's 2007 column; the "
        "printed Table 3 transposes the disk/DRAM capacities (see catalog "
        "docstring)")
    # Cross-check the catalog against the planning layer: the paper's
    # headline case study (2,400 DivX streams through the k=2 buffer)
    # solved via the shared planner must agree with Theorem 2 directly.
    from repro.core.buffer_model import design_mems_buffer
    from repro.core.parameters import SystemParameters
    from repro.planner import Configuration, default_planner
    from repro.units import KB

    case = SystemParameters.table3_default(n_streams=2_400,
                                           bit_rate=100 * KB, k=2)
    plan = default_planner().plan(case, Configuration.buffer()).require()
    direct = design_mems_buffer(case, quantise=False).total_dram
    agreement = ("agrees with" if plan.total_dram == direct
                 else "DISAGREES with")
    result.notes.append(
        f"planner cross-check: 2,400 DivX streams via the 2-device buffer "
        f"need {plan.total_dram / MB:.0f} MB DRAM "
        f"(T_disk={plan.t_disk:.1f}s); the planner {agreement} Theorem 2")
    return result
