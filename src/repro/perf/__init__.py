"""Performance layer: parallel sweeps and the benchmark harness.

Two deliberately separate concerns share this package:

* :mod:`repro.perf.parallel` — :func:`sweep_map`, the deterministic
  process-pool map the figure sweeps and the runtime scenario batch
  fan out through (``--jobs N`` on the CLI).  Results are byte-
  identical to a serial run by construction: every work item carries
  its full configuration/seed, workers hold no shared mutable state,
  and results are gathered in submission order.
* :mod:`repro.perf.bench` — the timed workloads behind ``mems-repro
  bench``, emitting schema-versioned ``BENCH_<name>.json`` records and
  comparing them against a recorded baseline (the regression gate).

See ``docs/PERFORMANCE.md`` for the determinism contract and the
bench JSON schema.
"""

from repro.perf.bench import (  # noqa: F401
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    WORKLOADS,
    compare_records,
    load_records,
    run_workloads,
    write_records,
)
from repro.perf.parallel import sweep_map  # noqa: F401

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchRecord",
    "WORKLOADS",
    "compare_records",
    "load_records",
    "run_workloads",
    "sweep_map",
    "write_records",
]
