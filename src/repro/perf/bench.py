"""Timed benchmark workloads and the performance-regression gate.

Each workload exercises one hot path end to end and reports its
metrics as a :class:`BenchRecord`, serialised to a schema-versioned
``BENCH_<name>.json``:

* ``event_loop`` — raw discrete-event engine throughput (a fan of
  periodic ``every()`` chains, no model work): the cost floor under
  every simulation, shaped like the runtime's mostly-monotone streams
  so the calendar-queue core is what gets measured;
* ``figure6_sweep`` — the Figure 6 planner sweep (both panels), the
  canonical bulk-evaluation workload of the paper's methodology;
* ``batch_sweep`` — the same demand curves plus an inverse budget grid
  through the vectorized batch planner
  (:mod:`repro.planner.batch`): thousands of configuration points per
  array operation instead of one solve per Python call;
* ``runtime_scenario`` — the ``device-failure`` online-server scenario
  rate-amplified through the table session core: vectorized arrivals,
  masked departure harvests, re-planning, failure recovery, O(changed)
  metrics intervals, gated on session-lifecycle events per second;
* ``million_sessions`` — the table core's raw session throughput on a
  short-session torrent (``large`` preset: ~1M admitted sessions),
  gated on admitted sessions per wall second;
* ``planner_cold`` / ``planner_warm`` — the memoizing planner on a
  fresh cache vs replaying the identical query set;
* ``admission_storm`` — epochs of budget re-planning plus arrival
  bursts through the admission controller, timed with warm-start
  planning on and reported against the cold-solve probe count;
* ``replan_epochs`` — adaptive-placement epoch re-planning under
  popularity drift, warm vs cold likewise;
* ``flash_crowd`` — the VoD prefix-mode scenario against the identical
  workload under whole-stream caching: the committed baseline pins the
  multicast fan-out ratio and the admitted-session advantage, plus a
  warm-vs-cold probe ratio for the prefix epoch re-planner;
* ``lint`` — the whole-program analysis engine over the repository's
  own sources, cold (every file parsed, graph built, all rules) and
  then warm from the content-hash cache on an untouched tree: the
  committed baseline gates the cold wall time, and the warm run must
  re-parse **zero** files (the CI gate asserts it);
* ``service_churn`` — control-plane churn through the
  :class:`~repro.service.facade.MediaService` facade on the table
  session core: cycles of ``admit_block`` bursts / teardown /
  reconfigure ops with the epoch replan running *off the request
  path* (``replan_latency > 0``), so admits landing inside each
  replan window park as PENDING tickets that the replan-done event
  finalizes in one fused pass; the baseline gates the facade's
  ``ops_per_sec`` and records how many tickets took the EVENT_FLOW
  path.

JSON schema (``BenchRecord.to_dict``)::

    {"schema": 1, "name": "event_loop", "preset": "small",
     "metrics": {"wall_time_s": 0.11, "events_per_sec": 1.8e6}}

Gated metrics (compared by :func:`compare_records`) are wall time
(lower is better) and the ``*_per_sec`` rates (higher is better);
anything else — cache hit rates, event counts — is informational.
Timing is the one sanctioned wall-clock read in the seeded layers and
lives in :func:`_elapsed`; everything else a workload does is fully
seeded and deterministic, so two runs differ only in timing.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError

#: Serialisation format version of ``BENCH_<name>.json``.
BENCH_SCHEMA_VERSION = 1

#: Gated metric -> better direction; unlisted metrics are informational.
METRIC_DIRECTIONS: dict[str, str] = {
    "wall_time_s": "lower",
    "events_per_sec": "higher",
    "solves_per_sec": "higher",
    "ops_per_sec": "higher",
    "sessions_per_sec": "higher",
}

#: Per-preset workload scale knobs.
_PRESETS: dict[str, dict[str, float]] = {
    # Fast enough for the test suite (< ~2 s total).
    "tiny": {"events": 5_000, "max_streams": 300.0, "horizon": 600.0,
             "grid": 4, "storm_epochs": 16, "storm_arrivals": 25,
             "replan_epochs": 10, "replan_titles": 20,
             "vod_horizon": 2_000.0,
             "churn_cycles": 4, "churn_admits": 30, "churn_sync": 200,
             "runtime_rate": 10.0,
             "million_rate": 150.0, "million_holding": 0.5,
             "million_horizon": 40.0,
             "lint_full": 0, "batch_points": 2_000},
    # The CI / default preset: seconds, not minutes.
    "small": {"events": 200_000, "max_streams": 3_000.0, "horizon": 3_000.0,
              "grid": 8, "storm_epochs": 24, "storm_arrivals": 100,
              "replan_epochs": 16, "replan_titles": 40,
              "vod_horizon": 6_000.0,
              "churn_cycles": 12, "churn_admits": 120, "churn_sync": 4_000,
              "runtime_rate": 200.0,
              "million_rate": 150.0, "million_holding": 0.5,
              "million_horizon": 1_000.0,
              "lint_full": 1, "batch_points": 50_000},
    # The million-session preset: the ``million_sessions`` workload
    # pushes ~1M admitted sessions through the table core; the other
    # workloads scale between ``small`` and ``full``.
    "large": {"events": 500_000, "max_streams": 30_000.0,
              "horizon": 3_000.0, "grid": 10,
              "storm_epochs": 40, "storm_arrivals": 200,
              "replan_epochs": 24, "replan_titles": 60,
              "vod_horizon": 8_000.0,
              "churn_cycles": 24, "churn_admits": 200, "churn_sync": 6_000,
              "runtime_rate": 200.0,
              "million_rate": 150.0, "million_holding": 0.5,
              "million_horizon": 7_000.0,
              "lint_full": 1, "batch_points": 150_000},
    # A fuller sweep for local before/after measurements.
    "full": {"events": 1_000_000,  # repro-lint: disable=unit-literals (an event count, not bytes)
             "max_streams": 100_000.0, "horizon": 6_000.0, "grid": 12,
             "storm_epochs": 60, "storm_arrivals": 400,
             "replan_epochs": 40, "replan_titles": 80,
             "vod_horizon": 12_000.0,
             "churn_cycles": 36, "churn_admits": 300, "churn_sync": 8_000,
             "runtime_rate": 200.0,
             "million_rate": 150.0, "million_holding": 0.5,
             "million_horizon": 10_000.0,
             "lint_full": 1, "batch_points": 400_000},
}


def _elapsed() -> float:
    """The sanctioned wall-clock read of the perf layer.

    Benchmarks are the one place the repository may observe real time;
    every other module under the ``determinism`` rule's scope gets its
    clock from the event engine.
    """
    return time.perf_counter()  # repro-lint: disable=determinism (reviewed: the bench timer)


def _scale(preset: str) -> dict[str, float]:
    try:
        return _PRESETS[preset]
    except KeyError:
        raise ConfigurationError(
            f"unknown bench preset {preset!r}; available: "
            f"{', '.join(_PRESETS)}") from None


@dataclass(frozen=True)
class BenchRecord:
    """One workload's measured metrics (a ``BENCH_<name>.json``)."""

    name: str
    preset: str
    metrics: dict[str, float]

    @property
    def filename(self) -> str:
        return f"BENCH_{self.name}.json"

    def to_dict(self) -> dict:
        return {"schema": BENCH_SCHEMA_VERSION, "name": self.name,
                "preset": self.preset,
                "metrics": dict(sorted(self.metrics.items()))}

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "BenchRecord":
        if payload.get("schema") != BENCH_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported bench schema {payload.get('schema')!r}; "
                f"expected {BENCH_SCHEMA_VERSION}")
        return cls(name=str(payload["name"]), preset=str(payload["preset"]),
                   metrics={str(k): float(v)
                            for k, v in payload["metrics"].items()})


# -- Workloads ---------------------------------------------------------------


def _noop(sim) -> None:
    """The event-loop workload's do-nothing callback (module level so
    the timed region measures the calendar, not closure dispatch)."""


def bench_event_loop(preset: str) -> dict[str, float]:
    """Raw event-calendar throughput: a fan of periodic chains.

    64 ``every()`` chains with staggered phases fill the calendar
    buckets the way the runtime's session heartbeats do — the
    mostly-monotone stream the bucketed wheel is tuned for.  Each
    firing re-arms its own calendar entry in place, so the timed region
    is pure schedule/pop/execute with no model work.
    """
    from repro.simulation.engine import Simulator

    n_events = int(_scale(preset)["events"])
    chains = 64
    interval = 0.001
    per_chain = -(-n_events // chains) + 1  # margin over float rounding
    sim = Simulator(max_events=chains * (per_chain + 2))
    for i in range(chains):
        sim.every(interval, _noop, start=interval * (i + 1) / chains)
    start = _elapsed()
    sim.run(until=interval * per_chain)
    wall = _elapsed() - start
    return {"wall_time_s": wall,
            "events_per_sec": sim.events_executed / wall,
            "events_executed": float(sim.events_executed)}


def bench_figure6_sweep(preset: str) -> dict[str, float]:
    """The Figure 6 bulk planner sweep (both panels, serial).

    Starts from a cleared shared-planner cache so repeats (and earlier
    workloads in the same process) measure the same cold sweep.
    """
    from repro.experiments import figure6
    from repro.planner import default_planner

    max_streams = _scale(preset)["max_streams"]
    default_planner().cache.clear()
    before = default_planner().stats()
    start = _elapsed()
    figure6.run(with_mems=False, max_streams=max_streams)
    figure6.run(with_mems=True, max_streams=max_streams)
    wall = _elapsed() - start
    after = default_planner().stats()
    solves = ((after["hits"] - before["hits"])
              + (after["misses"] - before["misses"]))
    hits = after["hits"] - before["hits"]
    return {"wall_time_s": wall,
            "solves_per_sec": solves / wall,
            "planner_hit_rate": (hits / solves) if solves else 0.0}


def bench_batch_sweep(preset: str) -> dict[str, float]:
    """Dense demand curves + an inverse budget grid, vectorized.

    The forward half evaluates Figure-6-style Theorem 1/2 demand curves
    (direct and buffered, one bit-rate per lane) over a dense
    population axis through :func:`repro.planner.batch.demand_curve`;
    the inverse half solves a grid of ``(bit_rate, budget)`` cells
    through :func:`repro.planner.batch.batch_max_streams` — the
    doubling + bisection search replayed across all lanes at once.
    ``solves_per_sec`` counts every curve point and every inverse lane,
    the same unit ``figure6_sweep`` gates, so the committed baselines
    expose the scalar-vs-batch ratio directly.
    """
    import numpy as np

    from repro.core.parameters import SystemParameters
    from repro.planner import Configuration
    from repro.planner.batch import batch_max_streams, demand_curve
    from repro.units import GB, KB

    scale = _scale(preset)
    points = int(scale["batch_points"])
    grid = int(scale["grid"])
    bases = []
    for i in range(grid):
        bases.append(SystemParameters.table3_default(
            n_streams=1, bit_rate=(50 + 50 * i) * KB, k=2,
            size_mems_unlimited=True))
    populations = np.linspace(1.0, 3_000.0, points)
    inverse_lanes = [(base, Configuration.buffer(), (j + 1) * 0.25 * GB)
                     for base in bases for j in range(grid)]
    solves = 0
    start = _elapsed()
    for base in bases:
        for configuration in (Configuration.direct(),
                              Configuration.buffer()):
            totals = demand_curve(base, configuration, populations)
            solves += len(totals)
    inverse = batch_max_streams(inverse_lanes)
    solves += len(inverse)
    wall = _elapsed() - start
    return {"wall_time_s": wall,
            "solves_per_sec": solves / wall,
            "demand_points": float(2 * grid * points),
            "inverse_lanes": float(len(inverse_lanes))}


def bench_runtime_scenario(preset: str) -> dict[str, float]:
    """The ``device-failure`` online scenario, rate-amplified.

    The scenario's arrival rate is multiplied by the preset's
    ``runtime_rate`` factor and the run goes through the table session
    core (``session_core="table"``), so the timed region is dominated
    by session lifecycle work — vectorized arrival draws, masked
    departure harvests, O(changed) metrics intervals — rather than by
    the handful of control timers.  The gated ``events_per_sec`` is
    **session-lifecycle events** (arrivals, admits, rejects, departs,
    drops: ``len(result.events)``) per wall second; the calendar's own
    ``events_executed`` is reported informationally.
    """
    from repro.runtime.runtime import run_runtime
    from repro.runtime.scenarios import build_scenario

    scale = _scale(preset)
    horizon = scale["horizon"]
    # Build the config outside the timed region: the factory's one-time
    # service-package import must not land in a single-repeat wall time.
    config = build_scenario("device-failure", seed=7, horizon=horizon)
    config.workload.scale_rate(scale["runtime_rate"])
    config.session_core = "table"
    start = _elapsed()
    result = run_runtime(config)
    wall = _elapsed() - start
    cache = result.planner_cache
    solves = cache.get("hits", 0) + cache.get("misses", 0)
    session_events = len(result.events)
    return {"wall_time_s": wall,
            "events_per_sec": session_events / wall,
            "session_events": float(session_events),
            "events_executed": float(result.events_executed),
            "planner_hit_rate": (cache.get("hits", 0) / solves
                                 if solves else 0.0)}


def bench_million_sessions(preset: str) -> dict[str, float]:
    """Raw session throughput of the table core, end to end.

    The ``steady-disk`` scenario (plain disk, no placement epochs to
    speak of) re-rated to a short-session torrent: the preset's
    ``million_rate`` arrivals per second held for ``million_holding``
    seconds keeps the live population far below the admission capacity,
    so virtually every arrival admits and the run measures the pure
    per-session cost of the struct-of-arrays core — chunked arrival
    draws, row recycling, masked departure scans, metrics notes.  The
    ``small`` preset admits ~150k sessions; ``large`` admits ~1M (the
    workload's namesake).  Gated on ``sessions_per_sec`` (admitted
    sessions per wall second).
    """
    from repro.runtime.runtime import run_runtime
    from repro.runtime.scenarios import build_scenario

    scale = _scale(preset)
    config = build_scenario("steady-disk", seed=5,
                            horizon=scale["million_horizon"])
    config.session_core = "table"
    config.workload.arrival_rate = scale["million_rate"]
    config.workload.mean_holding = scale["million_holding"]
    start = _elapsed()
    result = run_runtime(config)
    wall = _elapsed() - start
    totals = result.totals
    return {"wall_time_s": wall,
            "sessions_per_sec": totals.get("admits", 0) / wall,
            "sessions": float(totals.get("admits", 0)),
            "arrivals": float(totals.get("arrivals", 0)),
            "session_events": float(len(result.events))}


def _planner_query_set(grid: int):
    """A deterministic grid of forward and inverse planner queries."""
    from repro.core.parameters import SystemParameters
    from repro.planner import Configuration
    from repro.units import GB, KB

    queries = []
    for i in range(grid):
        bit_rate = (50 + 50 * i) * KB
        for j in range(grid):
            n = 20 + 40 * j
            params = SystemParameters.table3_default(
                n_streams=n, bit_rate=bit_rate, k=2)
            queries.append(("plan", params, Configuration.buffer()))
        base = SystemParameters.table3_default(n_streams=1,
                                               bit_rate=bit_rate, k=2)
        queries.append(("max_streams", base, Configuration.buffer(),
                        2 * GB))
    return queries


def _run_planner_queries(planner, queries) -> None:
    for query in queries:
        if query[0] == "plan":
            planner.plan(query[1], query[2])
        else:
            planner.max_streams(query[1], query[2], query[3])


def bench_planner_cold(preset: str) -> dict[str, float]:
    """The query grid against a fresh (empty-cache) planner."""
    from repro.planner.solver import Planner

    queries = _planner_query_set(int(_scale(preset)["grid"]))
    planner = Planner()
    start = _elapsed()
    _run_planner_queries(planner, queries)
    wall = _elapsed() - start
    stats = planner.stats()
    solves = stats["hits"] + stats["misses"]
    return {"wall_time_s": wall,
            "solves_per_sec": solves / wall,
            "planner_hit_rate": (stats["hits"] / solves) if solves else 0.0}


def bench_planner_warm(preset: str) -> dict[str, float]:
    """The identical query grid replayed against a warmed planner."""
    from repro.planner.solver import Planner

    queries = _planner_query_set(int(_scale(preset)["grid"]))
    planner = Planner()
    _run_planner_queries(planner, queries)  # warm the cache
    before = planner.stats()
    start = _elapsed()
    _run_planner_queries(planner, queries)
    wall = _elapsed() - start
    after = planner.stats()
    solves = ((after["hits"] - before["hits"])
              + (after["misses"] - before["misses"]))
    hits = after["hits"] - before["hits"]
    return {"wall_time_s": wall,
            "solves_per_sec": solves / wall,
            "planner_hit_rate": (hits / solves) if solves else 0.0}


def _probe_total(planner) -> float:
    stats = planner.stats()
    return float(stats["probes_cold"] + stats["probes_warm"])


def bench_admission_storm(preset: str) -> dict[str, float]:
    """Epochs of budget re-planning plus admission bursts.

    Each epoch nudges the DRAM budget (invalidating the controller's
    cached capacity threshold), then admits a burst of arrivals — the
    runtime's per-epoch traffic pattern.  The identical deterministic
    storm runs twice, against a cold planner (``warm_start=False``) and
    a warm-start one; the warm pass is the timed subject, and both
    probe totals are reported so the committed baseline pins the
    ``probe_ratio`` (cold probes / warm probes) the warm-start engine
    must sustain.
    """
    from repro.core.parameters import SystemParameters
    from repro.planner.solver import Planner
    from repro.scheduling.admission import AdmissionController
    from repro.units import GB, KB

    scale = _scale(preset)
    epochs = int(scale["storm_epochs"])
    arrivals = int(scale["storm_arrivals"])
    params = SystemParameters.table3_default(n_streams=1, bit_rate=500 * KB,
                                             k=2)

    def storm(warm_start: bool) -> tuple[Planner, float, float]:
        planner = Planner(warm_start=warm_start)
        controller = AdmissionController(params, 1 * GB,
                                         configuration="buffer",
                                         planner=planner)
        admitted = 0
        start = _elapsed()
        for epoch in range(epochs):
            # Small multiplicative drift: every epoch's capacity sits a
            # step away from the previous one, the warm-start sweet spot.
            controller.reconfigure(dram_budget=(1 * GB) * (1.0 + 1e-6 * epoch))
            for _ in range(arrivals):
                if controller.try_admit().admitted:
                    admitted += 1
            controller.release(controller.admitted_streams)
        wall = _elapsed() - start
        return planner, wall, float(admitted)

    cold_planner, _, _ = storm(False)
    warm_planner, wall, admitted = storm(True)
    stats = warm_planner.stats()
    probes_cold = _probe_total(cold_planner)
    probes_warm = _probe_total(warm_planner)
    return {"wall_time_s": wall,
            "solves_per_sec": (stats["solves_cold"]
                               + stats["solves_warm"]) / wall,
            "admissions": admitted,
            "planner_probes_cold_run": probes_cold,
            "planner_probes_warm_run": probes_warm,
            "probe_ratio": (probes_cold / probes_warm
                            if probes_warm else 0.0)}


def bench_replan_epochs(preset: str) -> dict[str, float]:
    """Adaptive-placement epoch re-planning under popularity drift.

    Every epoch observes a rotated traffic pattern (so the fitted
    popularity — and with it the planner's cache axis — changes each
    time) and re-plans with a budget, exercising the explicit
    capacity-hint threading across epochs.  Cold vs warm passes and
    metrics mirror ``admission_storm``.
    """
    from repro.core.parameters import SystemParameters
    from repro.planner.solver import Planner
    from repro.runtime.placement import AdaptivePlacement
    from repro.units import GB, KB

    scale = _scale(preset)
    epochs = int(scale["replan_epochs"])
    n_titles = int(scale["replan_titles"])
    params = SystemParameters.table3_default(n_streams=1, bit_rate=500 * KB,
                                             k=2)

    def run(warm_start: bool) -> tuple[Planner, float]:
        planner = Planner(warm_start=warm_start)
        placement = AdaptivePlacement(n_titles, planner=planner)
        start = _elapsed()
        for epoch in range(epochs):
            for title in range(n_titles):
                for _ in range(1 + (title + epoch) % 4):
                    placement.observe(title)
            placement.replan(params, float(40 + epoch), dram_budget=2 * GB)
        wall = _elapsed() - start
        return planner, wall

    cold_planner, _ = run(False)
    warm_planner, wall = run(True)
    stats = warm_planner.stats()
    probes_cold = _probe_total(cold_planner)
    probes_warm = _probe_total(warm_planner)
    return {"wall_time_s": wall,
            "solves_per_sec": (stats["solves_cold"]
                               + stats["solves_warm"]) / wall,
            "planner_probes_cold_run": probes_cold,
            "planner_probes_warm_run": probes_warm,
            "probe_ratio": (probes_cold / probes_warm
                            if probes_warm else 0.0)}


def bench_flash_crowd(preset: str) -> dict[str, float]:
    """The VoD ``flash_crowd`` scenario vs whole-stream caching.

    Three measured passes:

    1. the timed subject: the prefix-mode scenario (multicast batching,
       adaptive replacement, per-stream admission);
    2. the identical workload re-run under the whole-stream ``"cache"``
       configuration at the same MEMS/DRAM budgets (rebuilt from the
       factory — the workload object is mutated in place by surges);
    3. a cold-vs-warm :class:`~repro.vod.placement.PrefixPlacement`
       re-plan loop mirroring ``replan_epochs``, pinning the
       warm-start probe ratio for prefix-mode epoch solves.

    The committed baseline therefore gates the fan-out ratio
    (sessions per IO stream) and the admitted-session advantage the
    prefix mode must sustain over whole-stream caching.
    """
    from repro.core.parameters import SystemParameters
    from repro.planner.solver import Planner
    from repro.runtime.runtime import run_runtime
    from repro.runtime.scenarios import build_scenario
    from repro.units import GB, KB
    from repro.vod.placement import PrefixPlacement

    scale = _scale(preset)
    horizon = scale["vod_horizon"]
    start = _elapsed()
    prefix_result = run_runtime(build_scenario("flash_crowd", seed=11,
                                               horizon=horizon))
    wall = _elapsed() - start
    whole_config = build_scenario("flash_crowd", seed=11, horizon=horizon)
    whole_config.configuration = "cache"
    whole_result = run_runtime(whole_config)

    epochs = int(scale["replan_epochs"])
    n_titles = int(scale["replan_titles"])
    params = SystemParameters.table3_default(
        n_streams=1, bit_rate=500 * KB, k=2).replace(size_disk=100 * GB)

    def replan_loop(warm_start: bool) -> Planner:
        planner = Planner(warm_start=warm_start)
        placement = PrefixPlacement(n_titles, planner=planner)
        for epoch in range(epochs):
            for title in range(n_titles):
                for _ in range(1 + (title + epoch) % 4):
                    placement.observe(title)
            placement.replan(params, float(40 + epoch), dram_budget=2 * GB)
        return planner

    probes_cold = _probe_total(replan_loop(False))
    probes_warm = _probe_total(replan_loop(True))
    totals = prefix_result.totals
    return {"wall_time_s": wall,
            "events_per_sec": prefix_result.events_executed / wall,
            "fanout_ratio": prefix_result.notes["fanout_sessions_per_stream"],
            "sessions_prefix": float(totals.get("admits", 0)),
            "sessions_whole": float(whole_result.totals.get("admits", 0)),
            "batched_joins": float(totals.get("batched_joins", 0)),
            "io_streams": prefix_result.notes["streams_opened"],
            "prefix_probes_cold_run": probes_cold,
            "prefix_probes_warm_run": probes_warm,
            "probe_ratio": (probes_cold / probes_warm
                            if probes_warm else 0.0)}


def bench_service_churn(preset: str) -> dict[str, float]:
    """Control-plane churn through the ``MediaService`` facade.

    Each cycle opens an off-path replan window (``replan_latency > 0``),
    fires an ``admit_block`` burst into it — every one of those parks
    as a PENDING ticket, the EVENT_FLOW path — advances the calendar
    past the replan-done event (finalizing the whole parked batch
    through one fused ``handle_arrival_block`` pass), fires a much
    larger burst down the synchronous bulk path, tears half the
    admitted sessions down, and nudges the DRAM budget through
    ``reconfigure`` so the next cycle re-solves capacity.  The engine
    runs the table session core, so the synchronous burst exercises
    the saturated-tail bulk-reject path once capacity fills.  The
    gated ``ops_per_sec`` counts one op per issued ticket plus each
    teardown and reconfigure; ``pending_finalized`` pins that the
    off-path window actually parked work (the CI gate asserts > 0).
    """
    from repro.service.config import ControlConfig
    from repro.service.events import EventLog, ReplanCompleted
    from repro.service.facade import MediaService
    from repro.service.scenarios import adaptive_cache
    from repro.units import MB

    scale = _scale(preset)
    cycles = int(scale["churn_cycles"])
    admits = int(scale["churn_admits"])
    sync = int(scale["churn_sync"])
    latency = 5.0
    config = adaptive_cache(seed=3).replace(
        control=ControlConfig(epoch=300.0, metrics_interval=120.0,
                              replan_latency=latency),
        session_core="table")
    service = MediaService(config)
    sim = service.sim
    log = EventLog()
    service.bus.subscribe(ReplanCompleted, log)
    ops = 0
    live: list[int] = []
    start = _elapsed()
    for cycle in range(cycles):
        service.on_epoch(sim)  # opens the replan window
        # The whole burst lands inside the window: every ticket parks
        # as PENDING, and the replan-done event finalizes them in one
        # fused handle_arrival_block pass.
        ops += len(service.admit_block(count=admits))
        sim.run(until=sim.now + latency + 1.0)  # replan-done finalizes
        tickets = service.admit_block(count=sync)  # synchronous path
        ops += len(tickets)
        live.extend(t.session_id for t in tickets if t.admitted)
        for session_id in live[::2]:
            service.teardown(session_id)
            ops += 1
        live = live[1::2]
        service.reconfigure(dram_budget=(50 * MB) * (1.0 + 1e-6 * cycle))
        ops += 1
    wall = _elapsed() - start
    pending_finalized = sum(e.pending_finalized for e in log.events)
    return {"wall_time_s": wall,
            "ops_per_sec": ops / wall,
            "ops": float(ops),
            "pending_finalized": float(pending_finalized),
            "events_published": float(service.bus.events_published)}


def bench_lint(preset: str) -> dict[str, float]:
    """The whole-program lint engine over the repository's own tree.

    Cold pass first — every file parsed, summaries built, the import
    graph assembled, all rules run — then a warm pass against the same
    cache file with the tree untouched, which must replay entirely
    from cached entries: ``files_parsed_warm`` is pinned at 0 by the
    CI gate, and the committed baseline gates the cold ``wall_time_s``.
    The ``tiny`` preset (``lint_full = 0``) runs the per-file rules
    over the analysis package only; the CI/full presets lint the whole
    ``src`` tree with every rule, graph phase included.

    The imports are lazy and function-local: the analysis layer runs
    its file pass through :func:`repro.perf.parallel.sweep_map`, so a
    module-level import here would be a cycle through the package
    facades.
    """
    import tempfile

    from repro.analysis.config import find_project
    from repro.analysis.engine import run_analysis

    scale = _scale(preset)
    here = Path(__file__).resolve()
    config = find_project([here])
    if config.root is None:  # pragma: no cover - site-packages install
        raise ConfigurationError(
            "bench lint needs the repository checkout (no pyproject.toml "
            f"above {here})")
    if int(scale["lint_full"]):
        targets = [config.src_path()]
        rules = None
    else:
        targets = [here.parent.parent / "analysis"]
        rules = ["no-bare-assert", "exception-hygiene", "unit-literals"]
    with tempfile.TemporaryDirectory() as tmp:
        cache_path = Path(tmp) / "lint-cache.json"
        start = _elapsed()
        cold = run_analysis(targets, rules, config=config,
                            cache_path=cache_path)
        cold_wall = _elapsed() - start
        start = _elapsed()
        warm = run_analysis(targets, rules, config=config,
                            cache_path=cache_path)
        warm_wall = _elapsed() - start
    return {"wall_time_s": cold_wall,
            "warm_wall_s": warm_wall,
            "warm_speedup": cold_wall / warm_wall if warm_wall > 0 else 0.0,
            "files_checked": float(cold.files_checked),
            "files_parsed_cold": float(cold.files_parsed),
            "files_parsed_warm": float(warm.files_parsed),
            "cache_hits_warm": float(warm.cache_hits),
            "findings": float(len(cold.findings))}


#: Workload name -> runner; the order is the report order.
WORKLOADS = {
    "event_loop": bench_event_loop,
    "figure6_sweep": bench_figure6_sweep,
    "batch_sweep": bench_batch_sweep,
    "runtime_scenario": bench_runtime_scenario,
    "million_sessions": bench_million_sessions,
    "planner_cold": bench_planner_cold,
    "planner_warm": bench_planner_warm,
    "admission_storm": bench_admission_storm,
    "replan_epochs": bench_replan_epochs,
    "flash_crowd": bench_flash_crowd,
    "service_churn": bench_service_churn,
    "lint": bench_lint,
}


def _merge_repeat(merged: dict[str, float],
                  metrics: dict[str, float]) -> dict[str, float]:
    """Keep the best value per gated metric across repeats."""
    out = dict(merged)
    for name, value in metrics.items():
        direction = METRIC_DIRECTIONS.get(name)
        if name not in out:
            out[name] = value
        elif direction == "lower":
            out[name] = min(out[name], value)
        elif direction == "higher":
            out[name] = max(out[name], value)
        else:
            out[name] = value
    return out


def run_workloads(names: list[str] | None = None, *, preset: str = "small",
                  repeats: int = 1) -> list[BenchRecord]:
    """Run the selected workloads, best-of-``repeats`` per gated metric."""
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats!r}")
    _scale(preset)  # validate eagerly
    selected = list(WORKLOADS) if names is None else list(names)
    records = []
    for name in selected:
        try:
            runner = WORKLOADS[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown bench workload {name!r}; available: "
                f"{', '.join(WORKLOADS)}") from None
        metrics: dict[str, float] = {}
        for _ in range(repeats):
            metrics = _merge_repeat(metrics, runner(preset))
        records.append(BenchRecord(name=name, preset=preset,
                                   metrics=metrics))
    return records


# -- Persistence -------------------------------------------------------------


def write_records(records: list[BenchRecord],
                  out_dir: str | Path) -> list[Path]:
    """Write each record as ``BENCH_<name>.json`` under ``out_dir``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = []
    for record in records:
        path = out / record.filename
        path.write_text(record.to_json() + "\n")
        paths.append(path)
    return paths


def load_records(path: str | Path) -> dict[str, BenchRecord]:
    """Load ``BENCH_*.json`` records from a directory (or one file)."""
    source = Path(path)
    if source.is_dir():
        files = sorted(source.glob("BENCH_*.json"))
        if not files:
            raise ConfigurationError(
                f"no BENCH_*.json files under {source}")
    elif source.is_file():
        files = [source]
    else:
        raise ConfigurationError(f"no such bench baseline: {source}")
    records = {}
    for file in files:
        record = BenchRecord.from_dict(json.loads(file.read_text()))
        records[record.name] = record
    return records


# -- Comparison --------------------------------------------------------------


@dataclass(frozen=True)
class Comparison:
    """One gated metric compared against the baseline."""

    workload: str
    metric: str
    baseline: float
    current: float
    #: Signed regression percentage (positive = worse), direction-aware.
    regression_pct: float

    def describe(self) -> str:
        arrow = "worse" if self.regression_pct > 0 else "better"
        return (f"{self.workload}.{self.metric}: {self.baseline:.6g} -> "
                f"{self.current:.6g} ({abs(self.regression_pct):.1f}% "
                f"{arrow})")


def compare_records(current: dict[str, BenchRecord],
                    baseline: dict[str, BenchRecord],
                    tolerance_pct: float = 10.0
                    ) -> tuple[list[Comparison], list[Comparison]]:
    """Compare gated metrics; returns ``(all comparisons, regressions)``.

    A regression is a gated metric that is worse than the baseline by
    more than ``tolerance_pct`` percent (direction-aware).  Workloads
    present on only one side are ignored — comparisons run on the
    intersection, so a ``--workload`` subset still gates cleanly.
    """
    if tolerance_pct < 0:
        raise ConfigurationError(
            f"tolerance must be >= 0, got {tolerance_pct!r}")
    comparisons: list[Comparison] = []
    for name in current:
        base = baseline.get(name)
        if base is None:
            continue
        for metric, direction in METRIC_DIRECTIONS.items():
            if metric not in current[name].metrics \
                    or metric not in base.metrics:
                continue
            now = current[name].metrics[metric]
            then = base.metrics[metric]
            if not (math.isfinite(now) and math.isfinite(then)) or then <= 0:
                continue
            change = 100.0 * (now - then) / then
            regression = change if direction == "lower" else -change
            comparisons.append(Comparison(
                workload=name, metric=metric, baseline=then, current=now,
                regression_pct=regression))
    regressions = [c for c in comparisons
                   if c.regression_pct > tolerance_pct]
    return comparisons, regressions
