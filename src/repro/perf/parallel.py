"""Deterministic process-pool mapping for sweep workloads.

:func:`sweep_map` is the one fan-out primitive in the repository: an
ordered ``map(fn, items)`` over a process pool, with chunked dispatch
and a serial fallback at ``jobs=1``.  The figure sweeps, the extension
studies, and the runtime scenario batch all route their outer loops
through it, which is what ``--jobs N`` on the CLI toggles.

Determinism contract (also in ``docs/PERFORMANCE.md``):

* ``fn`` must be a module-level callable (workers import it by
  qualified name under the ``spawn`` start method) and must be *pure
  given its item* — every configuration and random seed travels inside
  the item, never through process-global state;
* workers share nothing writable: each rebuilds whatever planners or
  generators it needs from the item's seeds/configs, so a cold worker
  computes exactly what the warm in-process path computes;
* results are gathered in submission order regardless of completion
  order, so ``sweep_map(fn, items, jobs=n)`` equals
  ``[fn(i) for i in items]`` element for element, for any ``n``.

Pool construction anywhere else in the seeded layers is a lint
violation (see the ``determinism`` rule), which keeps this contract in
one reviewed place.

Batch mode (``batch=True``) composes with — it does not replace — the
process pool: a worker decorated with :func:`batchable` carries a
vectorized twin ``fn._batch_impl`` satisfying
``fn._batch_impl(items) == [fn(i) for i in items]`` element for
element (the numpy batch planner's bit-identity contract), and
``sweep_map`` dispatches whole chunks to it — one vectorized call per
chunk instead of one Python call per item.  Workers without a batch
twin fall back to the per-item path silently, so ``batch=True`` is
always safe to pass.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from typing import TypeVar

from repro.errors import ConfigurationError

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")

#: Upper bound on dispatch chunk size; small enough to keep workers
#: load-balanced on skewed per-item costs, large enough to amortise
#: pickling overhead.
MAX_CHUNK = 8


def _chunk_size(n_items: int, jobs: int) -> int:
    """Chunk so every worker gets several dispatches (load balance)."""
    return max(1, min(MAX_CHUNK, n_items // (jobs * 4) or 1))


def batchable(batch_impl: Callable[[list], list]):
    """Attach a vectorized twin to a per-item sweep worker.

    ``batch_impl(items)`` must equal ``[fn(i) for i in items]`` element
    for element — bit-identical, the same contract the parallel path
    honours — so :func:`sweep_map` may substitute one for the other
    freely.  The worker itself is returned unchanged (it still pickles
    by qualified name for the process pool).
    """

    def attach(fn: Callable[[_Item], _Result]) -> Callable[[_Item], _Result]:
        fn._batch_impl = batch_impl
        return fn

    return attach


def _apply_batch(payload: tuple[Callable, list]) -> list:
    """Pool worker for batch chunks (module-level, pickles by name)."""
    fn, chunk = payload
    return fn._batch_impl(chunk)


def sweep_map(fn: Callable[[_Item], _Result], items: Iterable[_Item], *,
              jobs: int = 1, chunk_size: int | None = None,
              batch: bool = False) -> list[_Result]:
    """Map ``fn`` over ``items`` on ``jobs`` processes, preserving order.

    ``jobs=1`` (the default) runs serially in-process — no pool, no
    pickling — and is the reference behaviour the parallel path must
    reproduce byte for byte.  Worker exceptions propagate to the
    caller.  ``chunk_size`` overrides the dispatch granularity
    (defaults to a size that keeps ``4 * jobs`` dispatches in flight,
    capped at :data:`MAX_CHUNK`).

    ``batch=True`` routes through ``fn``'s :func:`batchable` twin when
    it has one (silent per-item fallback otherwise) and composes with
    ``jobs``: the items are split into ``jobs`` contiguous chunks, one
    vectorized call each — wide chunks, not :data:`MAX_CHUNK`, because
    the vectorized path amortises per-call cost over the whole chunk.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs!r}")
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError(
            f"chunk_size must be >= 1, got {chunk_size!r}")
    work: Sequence[_Item] = items if isinstance(items, Sequence) \
        else list(items)
    impl = getattr(fn, "_batch_impl", None) if batch else None
    if impl is not None:
        width = chunk_size if chunk_size is not None \
            else -(-len(work) // jobs) if work else 1
        chunks = [list(work[i:i + width])
                  for i in range(0, len(work), width)]
        if jobs == 1 or len(chunks) <= 1:
            return [result for chunk in chunks for result in impl(chunk)]
        from concurrent.futures import ProcessPoolExecutor

        payloads = [(fn, chunk) for chunk in chunks]
        with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:  # repro-lint: disable=determinism
            return [result for block in pool.map(_apply_batch, payloads)
                    for result in block]
    if jobs == 1 or len(work) <= 1:
        return [fn(item) for item in work]
    from concurrent.futures import ProcessPoolExecutor

    jobs = min(jobs, len(work))
    chunk = chunk_size if chunk_size is not None \
        else _chunk_size(len(work), jobs)
    # The one sanctioned pool in the repository: items carry their
    # seeds, fn is pure, and Executor.map gathers in submission order.
    with ProcessPoolExecutor(max_workers=jobs) as pool:  # repro-lint: disable=determinism
        return list(pool.map(fn, work, chunksize=chunk))
