"""Exception hierarchy for the reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`,
so callers can catch library failures with a single ``except`` clause
while still distinguishing configuration mistakes from admission
(feasibility) failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A device, workload, or system parameter is malformed.

    Raised for non-positive rates, capacities, prices, stream counts,
    or otherwise self-inconsistent configurations.  Configuration errors
    indicate caller bugs and are always raised eagerly, at construction
    time, never in the middle of an analysis.
    """


class AdmissionError(ReproError):
    """The requested stream load is not schedulable on the given devices.

    The time-cycle analysis in the paper is only valid while the serviced
    load leaves slack on the device, e.g. Theorem 1 requires
    ``R_disk > N * B``.  When a caller asks for a buffer size, cycle
    length, or cost at an infeasible load, the library raises this error
    rather than returning a negative or infinite buffer size.
    """

    def __init__(self, message: str, *, load: float | None = None,
                 capacity: float | None = None) -> None:
        super().__init__(message)
        #: Offered load (bytes/second) that failed admission, if known.
        self.load = load
        #: Device service capacity (bytes/second) it was tested against.
        self.capacity = capacity


class CapacityError(ReproError):
    """A data set does not fit on the device meant to hold it.

    Raised, for example, when the MEMS bank is too small to hold the
    in-flight buffered data required by the disk IO cycle (Theorem 2,
    storage requirement), or when a cache-placement plan exceeds the
    cache capacity.
    """


class SchedulingError(ReproError):
    """A schedule could not be constructed or an invariant was violated.

    Raised by the scheduling layer when, e.g., no integer ``M < N``
    satisfies the cycle-commensurability requirement of Theorem 2, or
    when a simulated schedule underflows a stream buffer.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


def require(condition: bool, message: str) -> None:
    """Raise ``RuntimeError`` unless ``condition`` holds.

    The ``-O``-safe spelling of an internal invariant check.  Unlike
    ``assert``, this is an ordinary function call, so ``python -O``
    cannot strip it (the PR 2 incident: an infeasibility guard
    disappeared under ``-O`` and a bogus design was returned).  Use it
    for "unreachable unless this module has a bug" conditions; use the
    :class:`ReproError` subclasses for caller-visible contracts.
    ``RuntimeError`` deliberately does *not* derive from
    :class:`ReproError` — an internal bug must not be swallowed by a
    caller's ``except ReproError`` recovery path.
    """
    if not condition:
        raise RuntimeError(message)
