"""Unit constants and conversion helpers.

The paper mixes several unit systems: device data sheets use decimal
megabytes per second, DRAM prices are quoted per gigabyte, stream
bit-rates are quoted in kilobytes per second, and access times are
quoted in milliseconds.  Internally this library works exclusively in

* **bytes** for sizes,
* **bytes per second** for rates,
* **seconds** for times, and
* **dollars** for costs,

and uses the constants below at the API boundary.  All constants follow
the decimal (SI) convention used by storage vendors and by the paper
(1 MB = 10^6 bytes), *not* the binary convention.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = [
    "GB",
    "KB",
    "MB",
    "MS",
    "SECONDS_PER_MINUTE",
    "TB",
    "US",
    "bytes_to_human",
    "rate_to_human",
    "rpm_to_rotation_time",
    "seconds_to_human",
]

#: One kilobyte (decimal), in bytes.
KB = 1_000
#: One megabyte (decimal), in bytes.
MB = 1_000_000
#: One gigabyte (decimal), in bytes.
GB = 1_000_000_000
#: One terabyte (decimal), in bytes.
TB = 1_000_000_000_000

#: One millisecond, in seconds.
MS = 1e-3
#: One microsecond, in seconds.
US = 1e-6

#: Seconds per minute (used to convert RPM to rotation period).
SECONDS_PER_MINUTE = 60.0


def rpm_to_rotation_time(rpm: float) -> float:
    """Return the time of one full platter rotation, in seconds.

    >>> rpm_to_rotation_time(20_000)
    0.003

    Non-positive speeds are caller bugs and raise the library's
    configuration error, never a bare ``ValueError``:

    >>> rpm_to_rotation_time(0)
    Traceback (most recent call last):
        ...
    repro.errors.ConfigurationError: RPM must be positive, got 0
    >>> rpm_to_rotation_time(-7200)
    Traceback (most recent call last):
        ...
    repro.errors.ConfigurationError: RPM must be positive, got -7200
    """
    if rpm <= 0:
        raise ConfigurationError(f"RPM must be positive, got {rpm!r}")
    return SECONDS_PER_MINUTE / rpm


def bytes_to_human(n_bytes: float) -> str:
    """Format a byte count using the largest convenient decimal unit.

    >>> bytes_to_human(1_500_000)
    '1.50 MB'
    >>> bytes_to_human(512)
    '512 B'

    Zero stays in the byte band and negative sizes (deltas, e.g. a
    shrinking DRAM budget) keep their sign through the formatting:

    >>> bytes_to_human(0)
    '0 B'
    >>> bytes_to_human(-1_500_000)
    '-1.50 MB'
    """
    if n_bytes < 0:
        return "-" + bytes_to_human(-n_bytes)
    for unit, name in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if n_bytes >= unit:
            return f"{n_bytes / unit:.2f} {name}"
    return f"{n_bytes:.0f} B"


def rate_to_human(bytes_per_second: float) -> str:
    """Format a data rate using the largest convenient decimal unit.

    >>> rate_to_human(320 * MB)
    '320.00 MB/s'
    >>> rate_to_human(0)
    '0 B/s'
    >>> rate_to_human(-40 * MB)
    '-40.00 MB/s'
    """
    return bytes_to_human(bytes_per_second) + "/s"


def seconds_to_human(seconds: float) -> str:
    """Format a duration using ms/us where appropriate.

    >>> seconds_to_human(0.00059)
    '0.590 ms'
    >>> seconds_to_human(0)
    '0.000 us'
    >>> seconds_to_human(-0.00059)
    '-0.590 ms'
    """
    if seconds < 0:
        return "-" + seconds_to_human(-seconds)
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 0.1 * MS:
        # Storage latencies are conventionally quoted in milliseconds
        # down to fractions like 0.59 ms, so the ms band starts early.
        return f"{seconds / MS:.3f} ms"
    return f"{seconds / US:.3f} us"
