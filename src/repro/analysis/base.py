"""The checker interface and rule registry.

A checker is a small class with a stable ``rule`` id, a one-line
``description``, an ``applies_to`` path filter (rules like
``determinism`` only bind inside the stochastic layers), and a
``check`` method that walks a parsed module and yields
:class:`Finding` records.  Checkers register themselves with
:func:`register` at import time; :mod:`repro.analysis.checkers`
imports every rule module so the registry is complete after one
``import repro.analysis``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    #: Repository-relative (or as-given) path of the offending file.
    path: str
    #: 1-based source line of the violation (suppression granularity).
    line: int
    #: 0-based column, as reported by the ``ast`` node.
    col: int
    #: Stable rule identifier, e.g. ``"no-bare-assert"``.
    rule: str
    #: Human-readable explanation, specific to the violating code.
    message: str

    def to_dict(self) -> dict[str, object]:
        """JSON-ready record (the schema CI asserts)."""
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}


class Checker:
    """Base class for one lint rule.

    Subclasses set ``rule`` and ``description`` and implement
    :meth:`check`.  ``applies_to`` narrows the rule to the layers where
    the invariant holds; the engine consults it per file, so fixture
    trees under ``tests/`` exercise scoped rules simply by mirroring
    the directory names (``runtime/``, ``core/``, ...).
    """

    #: Stable rule id (kebab-case); the suppression and --rule key.
    rule: str = ""
    #: One-line description shown by ``mems-repro lint --list-rules``.
    description: str = ""

    def applies_to(self, path: Path) -> bool:
        """True when the rule binds for ``path`` (default: everywhere)."""
        return True

    def check(self, tree: ast.Module, source: str,
              path: Path) -> Iterator[Finding]:
        """Yield every violation found in the parsed module."""
        raise NotImplementedError

    def finding(self, path: Path, node: ast.AST, message: str) -> Finding:
        """Convenience constructor anchored at ``node``'s location."""
        return Finding(path=str(path), line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0), rule=self.rule,
                       message=message)


_REGISTRY: dict[str, type[Checker]] = {}


def register(checker_class: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the global registry."""
    rule = checker_class.rule
    if not rule:
        raise ConfigurationError(
            f"checker {checker_class.__name__} declares no rule id")
    if rule in _REGISTRY:
        raise ConfigurationError(f"duplicate checker rule id {rule!r}")
    _REGISTRY[rule] = checker_class
    return checker_class


def all_rules() -> dict[str, type[Checker]]:
    """The registry, rule id -> checker class (sorted by rule id)."""
    return dict(sorted(_REGISTRY.items()))


def get_checker(rule: str) -> Checker:
    """Instantiate the checker for ``rule``.

    Unknown ids raise :class:`~repro.errors.ConfigurationError` listing
    the valid ones — the CLI maps this to the usage exit code.
    """
    try:
        checker_class = _REGISTRY[rule]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none registered>"
        raise ConfigurationError(
            f"unknown lint rule {rule!r}; known rules: {known}") from None
    return checker_class()


def select_checkers(rules: Iterable[str] | None = None) -> list[Checker]:
    """Instantiate the requested checkers (default: every registered one)."""
    if rules is None:
        return [cls() for cls in all_rules().values()]
    return [get_checker(rule) for rule in rules]
