"""The checker interface and rule registry.

A checker is a small class with a stable ``rule`` id, a one-line
``description``, an ``applies_to`` path filter (rules like
``determinism`` only bind inside the stochastic layers), and a
``check`` method that walks a parsed module and yields
:class:`Finding` records.  Checkers register themselves with
:func:`register` at import time; :mod:`repro.analysis.checkers`
imports every rule module so the registry is complete after one
``import repro.analysis``.

Two kinds of rule share the registry:

* **file rules** (:class:`Checker`) see one parsed module at a time
  and run inside the parallel per-file pass;
* **graph rules** (:class:`ProjectChecker`) see the assembled
  :class:`~repro.analysis.project.ProjectGraph` — the whole-program
  import graph and symbol table — and run once per invocation.

Every checker receives the project's
:class:`~repro.analysis.config.LintConfig`; path scopes that PR 3
hardcoded as per-checker constants now come from the config's
declarative ``[tool.mems-repro.lint.scopes]`` tables.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.analysis.config import LintConfig
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.analysis.project import ProjectGraph


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    #: Repository-relative (or as-given) path of the offending file.
    path: str
    #: 1-based source line of the violation (suppression granularity).
    line: int
    #: 0-based column, as reported by the ``ast`` node.
    col: int
    #: Stable rule identifier, e.g. ``"no-bare-assert"``.
    rule: str
    #: Human-readable explanation, specific to the violating code.
    message: str

    def to_dict(self) -> dict[str, object]:
        """JSON-ready record (the schema CI asserts)."""
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> Finding:
        """Inverse of :meth:`to_dict` (the incremental cache reader)."""
        return cls(path=str(data["path"]), line=int(data["line"]),  # type: ignore[arg-type]
                   col=int(data["col"]), rule=str(data["rule"]),  # type: ignore[arg-type]
                   message=str(data["message"]))


class Checker:
    """Base class for one per-file lint rule.

    Subclasses set ``rule`` and ``description`` and implement
    :meth:`check`.  ``applies_to`` narrows the rule to the layers where
    the invariant holds; by default it honours the config's scope table
    for the rule (no scope entry = applies everywhere), so fixture
    trees under ``tests/`` exercise scoped rules simply by mirroring
    the directory names (``runtime/``, ``core/``, ...).
    """

    #: Stable rule id (kebab-case); the suppression and --rule key.
    rule: str = ""
    #: One-line description shown by ``mems-repro lint --list-rules``.
    description: str = ""
    #: Bump when the rule's logic changes: cached findings keyed under
    #: an older version are discarded on the next run.
    version: int = 1

    def __init__(self, config: LintConfig | None = None) -> None:
        self.config = config if config is not None else LintConfig()

    def applies_to(self, path: Path) -> bool:
        """True when the rule binds for ``path`` (default: the config
        scope for this rule, or everywhere without one)."""
        scope = self.config.scope(self.rule)
        return True if scope is None else scope.applies_to(path)

    def check(self, tree: ast.Module, source: str,
              path: Path) -> Iterator[Finding]:
        """Yield every violation found in the parsed module."""
        raise NotImplementedError

    def finding(self, path: Path | str, node: ast.AST,
                message: str) -> Finding:
        """Convenience constructor anchored at ``node``'s location."""
        return Finding(path=str(path), line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0), rule=self.rule,
                       message=message)


class ProjectChecker(Checker):
    """Base class for one whole-program (graph) lint rule.

    Graph rules run once per invocation against the assembled
    :class:`~repro.analysis.project.ProjectGraph`; they only engage
    when the linted paths sit inside a discovered project (a
    ``pyproject.toml`` ancestor), never for loose files.
    """

    def check(self, tree: ast.Module, source: str,
              path: Path) -> Iterator[Finding]:
        return iter(())  # graph rules contribute nothing per-file

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        """Yield every violation found in the whole-program graph."""
        raise NotImplementedError

    def at(self, summary_path: str, line: int, message: str) -> Finding:
        """Finding constructor anchored at a summary's source line."""
        return Finding(path=summary_path, line=line, col=0,
                       rule=self.rule, message=message)


_REGISTRY: dict[str, type[Checker]] = {}


def register(checker_class: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the global registry."""
    rule = checker_class.rule
    if not rule:
        raise ConfigurationError(
            f"checker {checker_class.__name__} declares no rule id")
    if rule in _REGISTRY:
        raise ConfigurationError(f"duplicate checker rule id {rule!r}")
    _REGISTRY[rule] = checker_class
    return checker_class


def all_rules() -> dict[str, type[Checker]]:
    """The registry, rule id -> checker class (sorted by rule id)."""
    return dict(sorted(_REGISTRY.items()))


def rule_versions() -> tuple[tuple[str, int], ...]:
    """Sorted ``(rule, version)`` pairs — part of the cache fingerprint."""
    return tuple((rule, cls.version) for rule, cls in all_rules().items())


def get_checker(rule: str, config: LintConfig | None = None) -> Checker:
    """Instantiate the checker for ``rule``.

    Unknown ids raise :class:`~repro.errors.ConfigurationError` listing
    the valid ones — the CLI maps this to the usage exit code.
    """
    try:
        checker_class = _REGISTRY[rule]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none registered>"
        raise ConfigurationError(
            f"unknown lint rule {rule!r}; known rules: {known}") from None
    return checker_class(config)


def select_checkers(rules: Iterable[str] | None = None,
                    config: LintConfig | None = None) -> list[Checker]:
    """Instantiate the requested checkers (default: every registered one)."""
    if rules is None:
        return [cls(config) for cls in all_rules().values()]
    return [get_checker(rule, config) for rule in rules]
