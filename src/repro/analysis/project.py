"""Whole-program import graph and symbol table.

The per-file checkers see one module at a time; the graph rules
(``layer-boundaries``, ``dead-export``, ``event-contract``) need the
*relationships* between modules.  This module condenses each parsed
file into a :class:`ModuleSummary` — a small, JSON-serializable record
of what the module imports, defines, references, and exports — and
assembles the summaries into a :class:`ProjectGraph` the graph
checkers query.

Summaries are deliberately lossy (no expression trees, no scopes):
they keep exactly the facts the graph rules consume, which keeps them
cheap to cache (the incremental cache stores the summary next to the
file's findings, so a warm run rebuilds the whole-program graph
without re-parsing a single unchanged file) and cheap to ship across
the ``sweep_map`` process pool.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, fields
from pathlib import Path

from repro.analysis.config import ROOT_LAYER, LintConfig

#: Bump when the summary shape changes (invalidates cached entries).
SUMMARY_VERSION = 1

#: String constants longer than this are not indexed (the contract
#: checkers match metric/event identifiers, not prose).
_MAX_INDEXED_STRING = 80


@dataclass(frozen=True)
class ModuleSummary:
    """What one module contributes to the whole-program graph."""

    #: Dotted module name (``repro.core.capacity``).
    module: str
    #: Path string as analyzed (findings anchor here).
    path: str
    is_package: bool = False
    #: Absolute ``(target_module, symbol_or_None, line)`` imports;
    #: ``symbol`` is None for ``import x`` and set for ``from x import y``.
    imports: tuple[tuple[str, str | None, int], ...] = ()
    #: ``(target_module, line)`` for ``from x import *``.
    star_imports: tuple[tuple[str, int], ...] = ()
    #: Top-level bindings: ``(name, line, kind, decorated)`` with kind
    #: one of ``def`` / ``class`` / ``assign``.
    defs: tuple[tuple[str, int, str, bool], ...] = ()
    #: Top-level classes with their (alias-resolved) base names.
    class_bases: tuple[tuple[str, tuple[str, ...]], ...] = ()
    #: Statically-resolvable ``__all__`` (None when absent/dynamic).
    all_names: tuple[str, ...] | None = None
    #: Names read anywhere in the module (Load context).
    used_names: tuple[str, ...] = ()
    #: Alias-resolved attribute chains read anywhere in the module.
    dotted_uses: tuple[str, ...] = ()
    #: Alias-resolved call targets (``repro.service.events.SessionAdmitted``).
    calls: tuple[str, ...] = ()
    #: ``(counter_name, line)`` from ``<metrics>.count("name")`` calls.
    metric_counts: tuple[tuple[str, int], ...] = ()
    #: ``(gauge_name, line)`` from ``gauges`` dict literals/subscripts.
    metric_gauges: tuple[tuple[str, int], ...] = ()
    #: Short string constants (identifier surface for contract sinks).
    strings: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, object]:
        data: dict[str, object] = {}
        for spec in fields(self):
            data[spec.name] = _plain(getattr(self, spec.name))
        return data

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> ModuleSummary:
        def tuples(value: object) -> tuple:
            return tuple(tuple(item) if isinstance(item, list) else item
                         for item in value)  # type: ignore[union-attr]
        return cls(
            module=str(data["module"]),
            path=str(data["path"]),
            is_package=bool(data["is_package"]),
            imports=tuples(data["imports"]),
            star_imports=tuples(data["star_imports"]),
            defs=tuples(data["defs"]),
            class_bases=tuples(data["class_bases"]),
            all_names=(None if data["all_names"] is None
                       else tuple(data["all_names"])),  # type: ignore[arg-type]
            used_names=tuple(data["used_names"]),  # type: ignore[arg-type]
            dotted_uses=tuple(data["dotted_uses"]),  # type: ignore[arg-type]
            calls=tuple(data["calls"]),  # type: ignore[arg-type]
            metric_counts=tuples(data["metric_counts"]),
            metric_gauges=tuples(data["metric_gauges"]),
            strings=tuple(data["strings"]))  # type: ignore[arg-type]


def _plain(value: object) -> object:
    if isinstance(value, tuple):
        return [_plain(item) for item in value]
    return value


def module_name_for(path: Path, src_root: Path) -> str | None:
    """Dotted module name of ``path`` under ``src_root`` (None if outside)."""
    try:
        rel = path.resolve().relative_to(src_root.resolve())
    except ValueError:
        return None
    parts = list(rel.parts)
    if not parts or not parts[-1].endswith(".py"):
        return None
    parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts) if parts else None


def _resolve_from(module: str, is_package: bool,
                  node: ast.ImportFrom) -> str | None:
    """Absolute target of a (possibly relative) ``from`` import."""
    if not node.level:
        return node.module
    base = module.split(".")
    if not is_package:
        base = base[:-1]
    drop = node.level - 1
    if drop:
        base = base[:-drop] if drop <= len(base) else []
    if node.module:
        base = [*base, node.module]
    return ".".join(base) or None


class _SummaryVisitor(ast.NodeVisitor):
    """One pass over a module collecting every summary fact."""

    def __init__(self, module: str, is_package: bool) -> None:
        self.module = module
        self.is_package = is_package
        self.aliases: dict[str, str] = {}
        self.imports: list[tuple[str, str | None, int]] = []
        self.star_imports: list[tuple[str, int]] = []
        self.used_names: set[str] = set()
        self.dotted_uses: set[str] = set()
        self.calls: set[str] = set()
        self.metric_counts: list[tuple[str, int]] = []
        self.metric_gauges: list[tuple[str, int]] = []
        self.strings: set[str] = set()

    # -- imports (anywhere in the file, including lazy ones) -------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.imports.append((alias.name, None, node.lineno))
            if alias.asname:
                self.aliases[alias.asname] = alias.name
            else:
                self.aliases.setdefault(alias.name.split(".")[0],
                                        alias.name.split(".")[0])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        target = _resolve_from(self.module, self.is_package, node)
        if target is None:
            return
        for alias in node.names:
            if alias.name == "*":
                self.star_imports.append((target, node.lineno))
                continue
            self.imports.append((target, alias.name, node.lineno))
            self.aliases[alias.asname or alias.name] = \
                f"{target}.{alias.name}"

    # -- uses -------------------------------------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.used_names.add(node.id)

    def _chain(self, node: ast.expr) -> str | None:
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = self.aliases.get(parts[0], parts[0])
        return ".".join([head, *parts[1:]])

    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = self._chain(node)
        if chain is not None:
            self.dotted_uses.add(chain)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        target = None
        if isinstance(node.func, ast.Name):
            target = self.aliases.get(node.func.id)
        elif isinstance(node.func, ast.Attribute):
            target = self._chain(node.func)
            if node.func.attr == "count" and node.args and \
                    isinstance(node.args[0], ast.Constant) and \
                    isinstance(node.args[0].value, str):
                self.metric_counts.append(
                    (node.args[0].value, node.lineno))
        if target is not None:
            self.calls.add(target)
        self.generic_visit(node)

    # -- gauge exports ----------------------------------------------------

    @staticmethod
    def _is_gauges_target(node: ast.expr) -> bool:
        return (isinstance(node, ast.Name) and node.id == "gauges") or \
               (isinstance(node, ast.Attribute) and node.attr == "gauges")

    def _record_gauge_dict(self, value: ast.expr) -> None:
        if not isinstance(value, ast.Dict):
            return
        for key in value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                self.metric_gauges.append((key.value, key.lineno))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if self._is_gauges_target(target):
                self._record_gauge_dict(node.value)
            if isinstance(target, ast.Subscript) and \
                    self._is_gauges_target(target.value) and \
                    isinstance(target.slice, ast.Constant) and \
                    isinstance(target.slice.value, str):
                self.metric_gauges.append(
                    (target.slice.value, node.lineno))
        self.generic_visit(node)

    # -- identifier-surface strings ---------------------------------------

    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, str) and \
                0 < len(node.value) <= _MAX_INDEXED_STRING:
            self.strings.add(node.value)


def _top_level_defs(tree: ast.Module) -> tuple[
        list[tuple[str, int, str, bool]], tuple[str, ...] | None]:
    defs: list[tuple[str, int, str, bool]] = []
    all_names: tuple[str, ...] | None = None
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs.append((node.name, node.lineno, "def",
                         bool(node.decorator_list)))
        elif isinstance(node, ast.ClassDef):
            defs.append((node.name, node.lineno, "class",
                         bool(node.decorator_list)))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        defs.append((name_node.id, node.lineno,
                                     "assign", False))
            if any(isinstance(t, ast.Name) and t.id == "__all__"
                   for t in node.targets):
                all_names = _literal_strings(node.value)
        elif isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name) and node.value is not None:
            defs.append((node.target.id, node.lineno, "assign", False))
    return defs, all_names


def _literal_strings(node: ast.expr) -> tuple[str, ...] | None:
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    names = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and
                isinstance(element.value, str)):
            return None
        names.append(element.value)
    return tuple(names)


def _class_bases(tree: ast.Module,
                 aliases: dict[str, str]) -> list[tuple[str, tuple[str, ...]]]:
    out = []
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        bases = []
        for base in node.bases:
            parts: list[str] = []
            cursor: ast.expr = base
            while isinstance(cursor, ast.Attribute):
                parts.append(cursor.attr)
                cursor = cursor.value
            if isinstance(cursor, ast.Name):
                parts.append(cursor.id)
                parts.reverse()
                head = aliases.get(parts[0], parts[0])
                bases.append(".".join([head, *parts[1:]]))
        out.append((node.name, tuple(bases)))
    return out


def summarize_module(tree: ast.Module, *, module: str, path: Path,
                     is_package: bool) -> ModuleSummary:
    """Condense one parsed module into its graph summary."""
    visitor = _SummaryVisitor(module, is_package)
    visitor.visit(tree)
    defs, all_names = _top_level_defs(tree)
    return ModuleSummary(
        module=module,
        path=str(path),
        is_package=is_package,
        imports=tuple(visitor.imports),
        star_imports=tuple(visitor.star_imports),
        defs=tuple(defs),
        class_bases=tuple(_class_bases(tree, visitor.aliases)),
        all_names=all_names,
        used_names=tuple(sorted(visitor.used_names)),
        dotted_uses=tuple(sorted(visitor.dotted_uses)),
        calls=tuple(sorted(visitor.calls)),
        metric_counts=tuple(visitor.metric_counts),
        metric_gauges=tuple(visitor.metric_gauges),
        strings=tuple(sorted(visitor.strings)))


@dataclass
class ProjectGraph:
    """Every module summary under the project's import root, plus the
    documentation corpus the contract rules accept as a consumer."""

    config: LintConfig
    #: module name -> summary, for every parseable ``.py`` under src.
    modules: dict[str, ModuleSummary] = field(default_factory=dict)
    #: Top-level package names found under the import root.
    packages: frozenset[str] = frozenset()
    #: Concatenated text of the configured docs corpus.
    docs_text: str = ""

    def layer_of(self, module: str) -> str | None:
        """Architecture layer of a project module (None if external).

        The layer is the first package level below the import root:
        ``repro.planner.search`` -> ``planner``.  A second-level name
        is its package's layer when it *is* a package
        (``repro.planner``'s ``__init__``) and the implicit ``root``
        layer when it is a top-level module (``repro.errors``).
        """
        parts = module.split(".")
        if parts[0] not in self.packages:
            return None
        if len(parts) > 2:
            return parts[1]
        if len(parts) == 2:
            summary = self.modules.get(module)
            if summary is None or summary.is_package:
                return parts[1]
            return ROOT_LAYER
        return ROOT_LAYER

    def importers_of(self, module: str, symbol: str) -> list[str]:
        """Modules that from-import or dotted-use ``module.symbol``."""
        dotted = f"{module}.{symbol}"
        out = []
        for name, summary in self.modules.items():
            if name == module:
                continue
            if any(target == module and sym == symbol
                   for target, sym, _ in summary.imports):
                out.append(name)
            elif any(use == dotted or use.startswith(dotted + ".")
                     for use in summary.dotted_uses):
                out.append(name)
        return out

    def star_importers_of(self, module: str) -> list[str]:
        return [name for name, summary in self.modules.items()
                if any(target == module
                       for target, _ in summary.star_imports)]


def build_graph(config: LintConfig,
                summaries: list[ModuleSummary]) -> ProjectGraph:
    """Assemble cached/fresh summaries into the whole-program graph."""
    modules = {summary.module: summary for summary in summaries}
    packages = frozenset(name.split(".")[0] for name in modules)
    return ProjectGraph(config=config, modules=modules, packages=packages,
                        docs_text=load_docs(config))


def load_docs(config: LintConfig) -> str:
    """Read the docs corpus named by the contract configuration."""
    if config.root is None:
        return ""
    chunks: list[str] = []
    for spec in config.contracts.docs:
        target = Path(config.root) / spec
        if target.is_dir():
            for doc in sorted(target.rglob("*.md")):
                chunks.append(doc.read_text(encoding="utf-8",
                                            errors="replace"))
        elif target.is_file():
            chunks.append(target.read_text(encoding="utf-8",
                                           errors="replace"))
    return "\n".join(chunks)
