"""Finding output: human text, machine JSON, stable exit codes.

The exit-code contract is part of the tool's API (CI and the tests
rely on it):

* ``EXIT_CLEAN`` (0) — every checked file passed;
* ``EXIT_FINDINGS`` (1) — at least one finding (including
  ``parse-error`` pseudo-findings);
* ``EXIT_USAGE`` (2) — the invocation itself was malformed (an unknown
  ``--rule``), distinct from "the code is dirty" so automation can tell
  a broken gate from a failing one.
"""

from __future__ import annotations

import json

from repro.analysis.base import Finding

#: No findings; the tree is clean.
EXIT_CLEAN = 0
#: One or more findings (or unparseable / missing inputs).
EXIT_FINDINGS = 1
#: Malformed invocation (e.g. an unknown rule id).
EXIT_USAGE = 2

#: Version of the JSON payload layout (bump on breaking change).
JSON_SCHEMA_VERSION = 1


def render_text(findings: list[Finding]) -> str:
    """GCC-style ``path:line:col: rule message`` lines plus a summary."""
    lines = [f"{f.path}:{f.line}:{f.col}: [{f.rule}] {f.message}"
             for f in findings]
    count = len(findings)
    lines.append("clean" if count == 0 else
                 f"{count} finding{'s' if count != 1 else ''}")
    return "\n".join(lines)


def render_json(findings: list[Finding], *, indent: int | None = 2) -> str:
    """The machine-readable report CI asserts the schema of."""
    payload = {
        "schema": JSON_SCHEMA_VERSION,
        "count": len(findings),
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def exit_code(findings: list[Finding]) -> int:
    """Map a finding list to the exit-code contract."""
    return EXIT_FINDINGS if findings else EXIT_CLEAN
