"""Finding output: human text, machine JSON, SARIF, stable exit codes.

The exit-code contract is part of the tool's API (CI and the tests
rely on it):

* ``EXIT_CLEAN`` (0) — every checked file passed;
* ``EXIT_FINDINGS`` (1) — at least one finding (including
  ``parse-error`` pseudo-findings);
* ``EXIT_USAGE`` (2) — the invocation itself was malformed (an unknown
  ``--rule``), distinct from "the code is dirty" so automation can tell
  a broken gate from a failing one.
"""

from __future__ import annotations

import json

from repro.analysis.base import Finding, all_rules

#: No findings; the tree is clean.
EXIT_CLEAN = 0
#: One or more findings (or unparseable / missing inputs).
EXIT_FINDINGS = 1
#: Malformed invocation (e.g. an unknown rule id).
EXIT_USAGE = 2

#: Version of the JSON payload layout (bump on breaking change).
JSON_SCHEMA_VERSION = 1


def render_text(findings: list[Finding]) -> str:
    """GCC-style ``path:line:col: rule message`` lines plus a summary."""
    lines = [f"{f.path}:{f.line}:{f.col}: [{f.rule}] {f.message}"
             for f in findings]
    count = len(findings)
    lines.append("clean" if count == 0 else
                 f"{count} finding{'s' if count != 1 else ''}")
    return "\n".join(lines)


def render_json(findings: list[Finding], *, indent: int | None = 2) -> str:
    """The machine-readable report CI asserts the schema of."""
    payload = {
        "schema": JSON_SCHEMA_VERSION,
        "count": len(findings),
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


#: SARIF format version emitted by :func:`render_sarif`.
SARIF_VERSION = "2.1.0"

#: Schema URI stamped into the SARIF report (CI asserts it).
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"


def render_sarif(findings: list[Finding], *, indent: int | None = 2) -> str:
    """SARIF 2.1.0 report — the interchange format code-scanning UIs
    (GitHub, VS Code SARIF viewers) ingest.

    One run, one driver; every registered rule is listed in the
    driver's rule table (so a clean report still documents the gate),
    and each finding becomes a ``level: error`` result with a physical
    location.  Columns are 1-based per the SARIF spec (findings store
    0-based ``ast`` columns).
    """
    rules = [{"id": rule,
              "shortDescription": {"text": checker_class.description}}
             for rule, checker_class in all_rules().items()]
    results = [{
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {"startLine": finding.line,
                           "startColumn": finding.col + 1},
            },
        }],
    } for finding in findings]
    payload = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "mems-repro-lint",
                "rules": rules,
            }},
            "results": results,
        }],
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def exit_code(findings: list[Finding]) -> int:
    """Map a finding list to the exit-code contract."""
    return EXIT_FINDINGS if findings else EXIT_CLEAN
