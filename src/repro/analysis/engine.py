"""The analysis engine: parse once, check everywhere, cache the rest.

The engine owns everything between "a path" and "a sorted list of
findings":

* reading and parsing each module once — every file rule shares the
  tree, and the parse also yields the module's
  :class:`~repro.analysis.project.ModuleSummary` for the graph phase;
* the **incremental cache** (:mod:`repro.analysis.cache`): unchanged
  files are recognised by content digest and cost zero parses;
* the **parallel pass**: files that do need parsing fan out through
  :func:`repro.perf.parallel.sweep_map` (``--jobs N``), whose ordered
  gathering keeps findings byte-identical to a serial run;
* the **graph phase**: when a project is discovered (nearest
  ``pyproject.toml``) and a graph rule is selected, summaries for the
  whole import root are assembled into a
  :class:`~repro.analysis.project.ProjectGraph` and the
  :class:`~repro.analysis.base.ProjectChecker` rules run once over it;
* per-line suppressions, the ratchet baseline, and stable ordering.

Suppressions are per *logical line*, in the style of the standard
linters::

    t_start = time.time()  # repro-lint: disable=determinism
    x = 1_000_000          # repro-lint: disable=unit-literals,no-bare-assert
    y = wall_clock()       # repro-lint: disable

A bare ``disable`` silences every rule; naming rules silences exactly
those.  A comment anywhere on a multi-line statement (a continuation
line, inside a bracketed argument list) covers the whole statement —
findings anchor at the statement's first line, which the physical
comment line may not be.  Naming a rule that does not exist is itself
a finding (``unknown-suppression``): a typo'd suppression must not
silently pass.  There is deliberately no block or file-wide form — a
suppression should be as loud as the violation it hides.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import (
    Checker,
    Finding,
    ProjectChecker,
    all_rules,
    select_checkers,
)
from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.cache import (
    CACHE_FILENAME,
    FileEntry,
    IncrementalCache,
    NullCache,
    content_digest,
)
from repro.analysis.config import LintConfig, find_project
from repro.analysis.project import (
    build_graph,
    module_name_for,
    summarize_module,
)

#: Pseudo-rule attached to files the parser rejects.
PARSE_ERROR_RULE = "parse-error"

#: Pseudo-rule attached to suppression comments naming unknown rules.
UNKNOWN_SUPPRESSION_RULE = "unknown-suppression"

#: Rules emitted by the engine itself (always reported, no checker).
PSEUDO_RULES = frozenset({PARSE_ERROR_RULE, UNKNOWN_SUPPRESSION_RULE})

_SUPPRESSION = re.compile(
    r"#\s*repro-lint:\s*disable(?:\s*=\s*(?P<rules>[\w,\s-]+))?")

#: Marker meaning "every rule" in a suppression map entry.
_ALL_RULES = frozenset({"*"})


def _collect_suppressions(source: str) -> tuple[
        dict[int, frozenset[str]], list[tuple[int, str]]]:
    """Suppression map plus every explicitly named rule.

    Returns ``(line -> silenced rules, [(comment line, named rule)])``.
    Comments are located with :mod:`tokenize` so a ``#`` inside a
    string literal never counts; a comment attached to a multi-line
    statement expands to the statement's whole physical span (findings
    anchor at the first line).  Unreadable token streams (the parser
    will flag the file anyway) yield empty results.
    """
    suppressed: dict[int, frozenset[str]] = {}
    named: list[tuple[int, str]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressed, named

    def add(lines: range | list[int], rules: frozenset[str]) -> None:
        for line in lines:
            suppressed[line] = suppressed.get(line, frozenset()) | rules

    skip = {tokenize.NL, tokenize.INDENT, tokenize.DEDENT,
            tokenize.ENDMARKER}
    logical_start: int | None = None
    pending: list[frozenset[str]] = []
    last_line = 1
    for token in tokens:
        last_line = max(last_line, token.end[0])
        if token.type == tokenize.COMMENT:
            match = _SUPPRESSION.search(token.string)
            if match is None:
                continue
            rules_text = match.group("rules")
            if rules_text is None:
                rules = _ALL_RULES
            else:
                parts = [part.strip() for part in rules_text.split(",")
                         if part.strip()]
                rules = frozenset(parts)
                named.extend((token.start[0], part) for part in parts)
            if logical_start is None:
                add([token.start[0]], rules)  # standalone comment line
            else:
                pending.append(rules)
        elif token.type == tokenize.NEWLINE:
            if logical_start is not None and pending:
                span = range(logical_start, token.start[0] + 1)
                for rules in pending:
                    add(span, rules)
            logical_start = None
            pending = []
        elif token.type in skip:
            continue
        elif logical_start is None:
            logical_start = token.start[0]
    if logical_start is not None and pending:  # EOF without NEWLINE
        span = range(logical_start, last_line + 1)
        for rules in pending:
            add(span, rules)
    return suppressed, named


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule ids silenced on that line.

    The value ``frozenset({"*"})`` means every rule.  Comments on
    continuation lines expand over the whole statement's span.
    """
    return _collect_suppressions(source)[0]


def _is_suppressed(finding: Finding,
                   suppressions: dict[int, frozenset[str]]) -> bool:
    rules = suppressions.get(finding.line)
    if rules is None:
        return False
    return rules == _ALL_RULES or finding.rule in rules or "*" in rules


def _known_rules() -> frozenset[str]:
    return frozenset(all_rules()) | PSEUDO_RULES | {"*"}


def _unknown_suppression_findings(
        path: str, named: list[tuple[int, str]]) -> list[Finding]:
    known = _known_rules()
    findings = []
    for line, rule in named:
        if rule in known:
            continue
        findings.append(Finding(
            path=path, line=line, col=0, rule=UNKNOWN_SUPPRESSION_RULE,
            message=(f"suppression names unknown rule {rule!r}; it "
                     f"silences nothing (known rules: "
                     f"{', '.join(sorted(all_rules()))})")))
    return findings


def _file_checkers(config: LintConfig) -> list[Checker]:
    return [checker for checker in select_checkers(None, config)
            if not isinstance(checker, ProjectChecker)]


def _parse_error_entry(path_str: str, digest: str, line: int, col: int,
                       message: str) -> FileEntry:
    return FileEntry(digest=digest, findings=[
        Finding(path=path_str, line=line, col=col,
                rule=PARSE_ERROR_RULE, message=message)])


def _build_entry(path_str: str, source: str, digest: str,
                 config: LintConfig) -> FileEntry:
    """Parse one file and derive everything the engine caches."""
    path = Path(path_str)
    try:
        tree = ast.parse(source, filename=path_str)
    except SyntaxError as exc:
        return _parse_error_entry(path_str, digest, exc.lineno or 1,
                                  (exc.offset or 1) - 1,
                                  f"syntax error: {exc.msg}")
    suppressions, named = _collect_suppressions(source)
    findings = list(_unknown_suppression_findings(path_str, named))
    for checker in _file_checkers(config):
        if checker.applies_to(path):
            findings.extend(checker.check(tree, source, path))
    findings = sorted(finding for finding in findings
                      if not _is_suppressed(finding, suppressions))
    summary = None
    src_path = config.src_path()
    if src_path is not None:
        module = module_name_for(path, src_path)
        if module is not None:
            summary = summarize_module(
                tree, module=module, path=path,
                is_package=path.name == "__init__.py")
    return FileEntry(
        digest=digest, findings=findings, summary=summary,
        suppressions={line: sorted(rules)
                      for line, rules in suppressions.items()})


def _process_file(item: tuple[str, str, str, LintConfig]) -> dict:
    """``sweep_map`` worker: one file -> one serialized cache entry.

    Workers run in fresh processes; importing the checkers package
    populates the rule registry before any checker is selected.
    """
    import repro.analysis.checkers  # noqa: F401  (registration import)
    path_str, source, digest, config = item
    return _build_entry(path_str, source, digest, config).to_dict()


def analyze_file(path: Path,
                 checkers: list[Checker] | None = None) -> list[Finding]:
    """Run the (selected) file checkers over one file.

    Returns findings sorted by location; a file the parser rejects
    yields a single ``parse-error`` finding, and suppression comments
    naming unknown rules yield ``unknown-suppression`` findings.
    Graph rules never run here — they need a whole project.
    """
    if checkers is None:
        checkers = select_checkers()
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [Finding(path=str(path), line=1, col=0,
                        rule=PARSE_ERROR_RULE,
                        message=f"cannot read file: {exc}")]
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(path=str(path), line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1, rule=PARSE_ERROR_RULE,
                        message=f"syntax error: {exc.msg}")]
    suppressions, named = _collect_suppressions(source)
    findings = list(_unknown_suppression_findings(str(path), named))
    findings.extend(
        finding
        for checker in checkers
        if not isinstance(checker, ProjectChecker)
        and checker.applies_to(path)
        for finding in checker.check(tree, source, path))
    return sorted(finding for finding in findings
                  if not _is_suppressed(finding, suppressions))


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(path.rglob("*.py"))
        else:
            files.add(path)
    return sorted(files)


@dataclass
class LintResult:
    """Findings plus the run's bookkeeping (cache behaviour, scale)."""

    findings: list[Finding] = field(default_factory=list)
    #: Files in the run's universe (requested + graph expansion).
    files_checked: int = 0
    #: Files actually read *and parsed* this run (cache misses).
    files_parsed: int = 0
    #: Files served from the incremental cache.
    cache_hits: int = 0
    #: Modules in the whole-program graph (0 when no graph phase ran).
    graph_modules: int = 0
    #: The resolved configuration the run used.
    config: LintConfig = field(default_factory=LintConfig)


def run_analysis(paths: list[Path], rules: list[str] | None = None, *,
                 jobs: int = 1, config: LintConfig | None = None,
                 use_cache: bool = True, cache_path: Path | None = None,
                 baseline_path: Path | None = None,
                 use_baseline: bool = True) -> LintResult:
    """The full engine: discover, cache, fan out, graph, ratchet.

    ``paths`` may mix files and directories; missing ones surface as
    ``parse-error`` findings so a typo'd CI invocation fails loudly
    instead of passing on an empty file set.  ``rules`` restricts the
    *reported* rules (unknown names raise
    :class:`~repro.errors.ConfigurationError`); the cache always
    stores every file rule's findings so any selection stays warm.
    Findings are byte-identical for any ``jobs`` value and between
    cold and warm cache runs.
    """
    if config is None:
        config = find_project([p for p in paths if p.exists()] or paths)
    checkers = select_checkers(rules, config)
    selected_rules = {checker.rule for checker in checkers} | PSEUDO_RULES
    project_checkers = [checker for checker in checkers
                        if isinstance(checker, ProjectChecker)]

    result = LintResult(config=config)
    missing_findings = [
        Finding(path=str(path), line=1, col=0, rule=PARSE_ERROR_RULE,
                message="no such file or directory")
        for path in paths if not path.exists()]

    # Requested files, with the spelling the caller used (reports keep
    # it); everything internal is keyed by resolved absolute path.
    requested: dict[str, str] = {}
    for file_path in iter_python_files([p for p in paths if p.exists()]):
        requested.setdefault(str(file_path.resolve()), str(file_path))

    # The run's universe: requested files, plus — when a graph rule is
    # selected and the request reaches into a discovered project — the
    # project's whole import root.
    universe: dict[str, Path] = {key: Path(key) for key in requested}
    src_path = config.src_path()
    graph_enabled = bool(
        project_checkers and src_path is not None and src_path.is_dir()
        and any(Path(key).is_relative_to(src_path.resolve())
                for key in requested))
    if graph_enabled:
        for file_path in iter_python_files([src_path]):
            universe.setdefault(str(file_path.resolve()), file_path)
    result.files_checked = len(universe)

    # -- per-file pass, through the cache --------------------------------
    if not use_cache:
        cache: IncrementalCache = NullCache()
    else:
        location = cache_path
        if location is None and config.root is not None:
            location = Path(config.root) / CACHE_FILENAME
        cache = (NullCache() if location is None
                 else IncrementalCache.load(location, config))

    entries: dict[str, FileEntry] = {}
    to_parse: list[tuple[str, str, str, LintConfig]] = []
    for key in sorted(universe):
        try:
            data = universe[key].read_bytes()
            source = data.decode("utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            entries[key] = _parse_error_entry(
                key, "", 1, 0, f"cannot read file: {exc}")
            continue
        digest = content_digest(data)
        entry = cache.lookup(key, digest)
        if entry is not None:
            entries[key] = entry
        else:
            to_parse.append((key, source, digest, config))

    if to_parse:
        from repro.perf.parallel import sweep_map  # lazy: avoids an
        # import cycle through repro.perf.bench's lint workload
        for item, raw in zip(to_parse,
                             sweep_map(_process_file, to_parse, jobs=jobs)):
            entry = FileEntry.from_dict(raw)
            entries[item[0]] = entry
            cache.store(item[0], entry)
    result.files_parsed = len(to_parse)
    result.cache_hits = cache.hits

    findings: list[Finding] = []
    for key in sorted(requested):
        for finding in entries[key].findings:
            if finding.rule in selected_rules:
                findings.append(finding)

    # -- graph phase ------------------------------------------------------
    if graph_enabled:
        summaries = [entry.summary for _, entry in sorted(entries.items())
                     if entry.summary is not None]
        graph = build_graph(config, summaries)
        result.graph_modules = len(graph.modules)
        for checker in project_checkers:
            for finding in checker.check_project(graph):
                key = str(Path(finding.path).resolve())
                if key not in requested:
                    continue
                entry = entries.get(key)
                suppressions = {} if entry is None else {
                    line: frozenset(rules)
                    for line, rules in entry.suppressions.items()}
                if _is_suppressed(finding, suppressions):
                    continue
                findings.append(finding)

    # -- ratchet baseline -------------------------------------------------
    accepted: dict[tuple[str, str], int] = {}
    location = baseline_path if use_baseline else None
    if use_baseline and location is None and \
            config.baseline is not None and config.root is not None:
        candidate = Path(config.root) / config.baseline
        if candidate.is_file():
            location = candidate
    if location is not None:
        accepted = load_baseline(location)
    if accepted:
        findings = apply_baseline(
            findings, accepted,
            keys=[baseline_key(finding.path, config)
                  for finding in findings])

    # -- report spelling: resolve back to what the caller typed -----------
    rewritten = []
    for finding in findings:
        key = str(Path(finding.path).resolve())
        as_given = requested.get(key)
        if as_given is not None and as_given != finding.path:
            finding = Finding(path=as_given, line=finding.line,
                              col=finding.col, rule=finding.rule,
                              message=finding.message)
        rewritten.append(finding)
    rewritten.extend(missing_findings)

    cache.write()
    result.findings = sorted(rewritten)
    return result


def baseline_key(path_str: str, config: LintConfig) -> str:
    """Stable (project-root-relative) path key for the ratchet file."""
    if config.root is None:
        return path_str
    try:
        return Path(path_str).resolve().relative_to(
            Path(config.root).resolve()).as_posix()
    except ValueError:
        return path_str


def analyze_paths(paths: list[Path], rules: list[str] | None = None, *,
                  jobs: int = 1, use_cache: bool = True,
                  config: LintConfig | None = None) -> list[Finding]:
    """Run the (selected) checkers over files and directory trees.

    The compatibility wrapper around :func:`run_analysis` — same
    findings, no stats.
    """
    return run_analysis(paths, rules, jobs=jobs, use_cache=use_cache,
                        config=config).findings
