"""Parsing, file walking, and per-line suppressions.

The engine owns everything between "a path" and "a sorted list of
findings": reading and parsing each module once (every checker shares
the tree), honouring inline suppressions, and turning unparseable files
into ``parse-error`` findings rather than crashes — a lint gate that
dies on bad input protects nothing.

Suppressions are per *line*, in the style of the standard linters::

    t_start = time.time()  # repro-lint: disable=determinism
    x = 1_000_000          # repro-lint: disable=unit-literals,no-bare-assert
    y = wall_clock()       # repro-lint: disable

A bare ``disable`` silences every rule on that one line; naming rules
silences exactly those.  There is deliberately no block or file-wide
form — a suppression should be as loud as the violation it hides.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path

from repro.analysis.base import Checker, Finding, select_checkers

#: Pseudo-rule attached to files the parser rejects.
PARSE_ERROR_RULE = "parse-error"

_SUPPRESSION = re.compile(
    r"#\s*repro-lint:\s*disable(?:\s*=\s*(?P<rules>[\w,\s-]+))?")

#: Marker meaning "every rule" in a suppression map entry.
_ALL_RULES = frozenset({"*"})


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule ids silenced on that line.

    Comments are located with :mod:`tokenize` so a ``#`` inside a
    string literal never counts.  The value ``frozenset({"*"})`` means
    every rule.  Unreadable token streams (the parser will flag the
    file anyway) yield an empty map.
    """
    suppressed: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(token.start[0], token.string) for token in tokens
                    if token.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressed
    for line, text in comments:
        match = _SUPPRESSION.search(text)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            named = _ALL_RULES
        else:
            named = frozenset(part.strip() for part in rules.split(",")
                              if part.strip())
        suppressed[line] = suppressed.get(line, frozenset()) | named
    return suppressed


def _is_suppressed(finding: Finding,
                   suppressions: dict[int, frozenset[str]]) -> bool:
    rules = suppressions.get(finding.line)
    if rules is None:
        return False
    return rules == _ALL_RULES or finding.rule in rules or "*" in rules


def analyze_file(path: Path,
                 checkers: list[Checker] | None = None) -> list[Finding]:
    """Run the (selected) checkers over one file.

    Returns findings sorted by location; a file the parser rejects
    yields a single ``parse-error`` finding.
    """
    if checkers is None:
        checkers = select_checkers()
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [Finding(path=str(path), line=1, col=0,
                        rule=PARSE_ERROR_RULE,
                        message=f"cannot read file: {exc}")]
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(path=str(path), line=exc.lineno or 1,
                        col=(exc.offset or 1) - 1, rule=PARSE_ERROR_RULE,
                        message=f"syntax error: {exc.msg}")]
    suppressions = parse_suppressions(source)
    findings = [
        finding
        for checker in checkers if checker.applies_to(path)
        for finding in checker.check(tree, source, path)
        if not _is_suppressed(finding, suppressions)
    ]
    return sorted(findings)


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(path.rglob("*.py"))
        else:
            files.add(path)
    return sorted(files)


def analyze_paths(paths: list[Path],
                  rules: list[str] | None = None) -> list[Finding]:
    """Run the (selected) checkers over files and directory trees.

    Missing paths surface as ``parse-error`` findings so a typo'd CI
    invocation fails loudly instead of passing on an empty file set.
    """
    checkers = select_checkers(rules)
    findings: list[Finding] = []
    missing = [path for path in paths if not path.exists()]
    for path in missing:
        findings.append(Finding(path=str(path), line=1, col=0,
                                rule=PARSE_ERROR_RULE,
                                message="no such file or directory"))
    for file_path in iter_python_files([p for p in paths if p.exists()]):
        findings.extend(analyze_file(file_path, checkers))
    return sorted(findings)
