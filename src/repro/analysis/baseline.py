"""Ratchet baseline: adopt a rule before the tree is clean.

A new rule on an old tree finds dozens of pre-existing violations; a
gate that blocks on all of them either never lands or lands with the
rule disabled.  The ratchet is the standard middle path: a committed
baseline records the *accepted* finding count per ``(rule, path)``,
the gate waives up to that many findings, and any **new** violation in
a file still fails loudly.  Counts only ratchet down — regenerate the
baseline after paying debt and the lower count becomes the new bound.

Semantics are deliberately count-based, not location-based: line
numbers churn with every edit, so a baseline that pins locations
rots immediately.  If a file's finding count for a rule exceeds its
baselined count, *all* of that file's findings for the rule are
reported (the author sees the full debt, not an arbitrary "newest"
subset); at or under the count, all are waived.

The repository's own baseline (``lint-baseline.json``) is empty — the
gate lands blocking-clean — but the mechanism is wired so the next
rule can adopt gradually.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.base import Finding
from repro.errors import ConfigurationError

#: Version of the baseline file layout.
BASELINE_SCHEMA = 1


def load_baseline(path: Path) -> dict[tuple[str, str], int]:
    """Read ``{(rule, path): accepted_count}`` from a baseline file."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read lint baseline {path}: {exc}") from exc
    except ValueError as exc:
        raise ConfigurationError(
            f"lint baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or \
            payload.get("schema") != BASELINE_SCHEMA:
        raise ConfigurationError(
            f"lint baseline {path} must be a JSON object with "
            f'"schema": {BASELINE_SCHEMA}')
    counts = payload.get("counts", {})
    if not isinstance(counts, dict):
        raise ConfigurationError(
            f'lint baseline {path}: "counts" must be an object')
    accepted: dict[tuple[str, str], int] = {}
    for rule, files in counts.items():
        if not isinstance(files, dict):
            raise ConfigurationError(
                f"lint baseline {path}: counts[{rule!r}] must map "
                f"paths to integers")
        for file_path, count in files.items():
            if not isinstance(count, int) or count < 0:
                raise ConfigurationError(
                    f"lint baseline {path}: counts[{rule!r}][{file_path!r}]"
                    f" must be a non-negative integer")
            accepted[(rule, file_path)] = count
    return accepted


def apply_baseline(findings: list[Finding],
                   accepted: dict[tuple[str, str], int], *,
                   keys: list[str] | None = None) -> list[Finding]:
    """Waive findings covered by the baseline (count semantics above).

    ``keys`` supplies the stable path key for each finding (project-
    root-relative, so the committed baseline survives being invoked
    from any directory); defaults to the findings' own paths.
    """
    if not accepted:
        return findings
    if keys is None:
        keys = [finding.path for finding in findings]
    totals: dict[tuple[str, str], int] = {}
    for finding, path_key in zip(findings, keys):
        key = (finding.rule, path_key)
        totals[key] = totals.get(key, 0) + 1
    kept = []
    for finding, path_key in zip(findings, keys):
        key = (finding.rule, path_key)
        if totals[key] <= accepted.get(key, 0):
            continue
        kept.append(finding)
    return kept


def render_baseline(findings: list[Finding], *,
                    keys: list[str] | None = None) -> str:
    """Serialize the current findings as a fresh baseline file."""
    if keys is None:
        keys = [finding.path for finding in findings]
    counts: dict[str, dict[str, int]] = {}
    for finding, path_key in zip(findings, keys):
        by_path = counts.setdefault(finding.rule, {})
        by_path[path_key] = by_path.get(path_key, 0) + 1
    payload = {"schema": BASELINE_SCHEMA,
               "counts": {rule: dict(sorted(files.items()))
                          for rule, files in sorted(counts.items())}}
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
