"""Repo-specific static analysis: the invariants pytest cannot see.

The reproduction makes promises that hold *by convention*, not by any
type the interpreter checks: all internal math is in the decimal base
units of :mod:`repro.units`; a fixed seed replays a run byte-for-byte;
library errors derive from :class:`repro.errors.ReproError`; and no
load-bearing check may be an ``assert`` statement, because ``python -O``
strips those (a real PR-2 incident).  This package enforces them
mechanically, at analysis time:

* :mod:`repro.analysis.base` — the :class:`~repro.analysis.base.Finding`
  record, the :class:`~repro.analysis.base.Checker` interface, and the
  rule registry;
* :mod:`repro.analysis.checkers` — the six repo-specific rules;
* :mod:`repro.analysis.engine` — file walking, parsing, per-line
  ``# repro-lint: disable=<rule>`` suppressions;
* :mod:`repro.analysis.reporters` — human and JSON output with stable
  exit codes.

Run it as ``mems-repro lint [--json] [--rule ...] [paths]``; CI runs it
over ``src/`` as a blocking step.  See ``docs/LINTING.md`` for the
rule-by-rule rationale.
"""

from repro.analysis.base import Checker, Finding, all_rules, get_checker
from repro.analysis.engine import analyze_file, analyze_paths
from repro.analysis.reporters import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    render_json,
    render_text,
)

# Importing the checkers package populates the registry as a side
# effect; nothing else must happen before the first all_rules() call.
import repro.analysis.checkers  # noqa: F401  (registration import)

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "Checker",
    "Finding",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "get_checker",
    "render_json",
    "render_text",
]
