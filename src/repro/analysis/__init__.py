"""Repo-specific static analysis: the invariants pytest cannot see.

The reproduction makes promises that hold *by convention*, not by any
type the interpreter checks: all internal math is in the decimal base
units of :mod:`repro.units`; a fixed seed replays a run byte-for-byte;
library errors derive from :class:`repro.errors.ReproError`; and no
load-bearing check may be an ``assert`` statement, because ``python -O``
strips those (a real PR-2 incident).  This package enforces them
mechanically, at analysis time:

* :mod:`repro.analysis.base` — the :class:`~repro.analysis.base.Finding`
  record, the :class:`~repro.analysis.base.Checker` /
  :class:`~repro.analysis.base.ProjectChecker` interfaces, and the
  rule registry;
* :mod:`repro.analysis.config` — the declarative
  ``[tool.mems-repro.lint]`` configuration (rule scopes, the layer
  DAG, shims, contract surfaces) discovered from the nearest
  ``pyproject.toml``;
* :mod:`repro.analysis.project` — the whole-program import graph and
  symbol table the graph rules run against;
* :mod:`repro.analysis.checkers` — the ten repo-specific rules;
* :mod:`repro.analysis.engine` — file walking, parsing, the
  content-hash incremental cache, the ``sweep_map`` parallel pass,
  per-line ``# repro-lint: disable=<rule>`` suppressions, and the
  ratchet baseline;
* :mod:`repro.analysis.reporters` — human text, JSON, and SARIF
  output with stable exit codes.

Run it as ``mems-repro lint [--json] [--rule ...] [--jobs N]
[--changed] [paths]``; CI runs it over ``src/`` as a blocking step.
See ``docs/LINTING.md`` for the rule-by-rule rationale.
"""

from repro.analysis.base import (
    Checker,
    Finding,
    ProjectChecker,
    all_rules,
    get_checker,
)
from repro.analysis.config import LintConfig, find_project, load_config
from repro.analysis.engine import (
    LintResult,
    analyze_file,
    analyze_paths,
    parse_suppressions,
    run_analysis,
)
from repro.analysis.project import ModuleSummary, ProjectGraph
from repro.analysis.reporters import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    render_json,
    render_sarif,
    render_text,
)

# Importing the checkers package populates the registry as a side
# effect; nothing else must happen before the first all_rules() call.
import repro.analysis.checkers  # noqa: F401  (registration import)

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "Checker",
    "Finding",
    "LintConfig",
    "LintResult",
    "ModuleSummary",
    "ProjectChecker",
    "ProjectGraph",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "find_project",
    "get_checker",
    "load_config",
    "parse_suppressions",
    "render_json",
    "render_sarif",
    "render_text",
    "run_analysis",
]
