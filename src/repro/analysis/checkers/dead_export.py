"""``dead-export``: every public module-level symbol has a reader.

Seven PRs of aggressive refactoring leave orphans: a helper whose
last caller moved into the planner, a constant superseded by a config
knob.  Dead exports are review debt — they look load-bearing, so
every future refactor budgets for them.  This rule walks the
whole-program symbol table and flags public top-level bindings that
nothing reads.

A symbol is *live* when any of these holds:

* it appears in its own module's ``__all__`` (a declared public API —
  the package facade pattern);
* its own module reads it (helpers used locally are fine even if
  nothing imports them — visibility is a separate question);
* another module from-imports it or reaches it as a dotted attribute
  (``planner.search.max_feasible_real`` style);
* some module star-imports its module (conservatively keeps every
  public name there);
* it is a declared CLI entry point (``[project.scripts]``);
* it is decorated — decorators like ``@register`` exist to make the
  definition itself the use;
* it is a dunder (``__version__``, ``__all__``).

Deliberately *not* live: being re-exported from the defining module's
own import list (re-exports are uses *of the source*, not of the
shim's binding — ``shim-freshness`` governs those modules), and being
referenced only from tests (the contract is that ``src/`` carries its
own weight).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.base import Finding, ProjectChecker, register
from repro.analysis.project import ProjectGraph


@register
class DeadExportChecker(ProjectChecker):
    """Flag public top-level symbols no module imports, uses, or exports."""

    rule = "dead-export"
    description = ("public module-level symbols must be imported, used, "
                   "listed in __all__, or registered somewhere")

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        entry_points = set(self.config.entry_points)
        for module in sorted(graph.modules):
            summary = graph.modules[module]
            own_all = set(summary.all_names or ())
            starred = bool(graph.star_importers_of(module))
            seen: set[str] = set()
            for name, line, kind, decorated in summary.defs:
                if name in seen:
                    continue
                seen.add(name)
                if name.startswith("_") or decorated:
                    continue
                if name in own_all or starred:
                    continue
                if (module, name) in entry_points:
                    continue
                if name in summary.used_names:
                    continue
                if any(use.startswith(f"{name}.")
                       for use in summary.dotted_uses):
                    continue
                if graph.importers_of(module, name):
                    continue
                label = {"def": "function", "class": "class"}.get(
                    kind, "binding")
                yield self.at(
                    summary.path, line,
                    f"public {label} {module}.{name} is never imported, "
                    f"used, or listed in __all__ anywhere in the project; "
                    f"delete it or declare it in __all__")
