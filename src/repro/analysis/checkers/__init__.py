"""The repo-specific lint rules.

Importing this package registers every checker (the modules register
themselves via :func:`repro.analysis.base.register` at import time).
One module per rule keeps each invariant's logic, scope, and rationale
in one reviewable place; add new rules by dropping a module here and
importing it below.
"""

from repro.analysis.checkers import (  # noqa: F401  (registration imports)
    asserts,
    determinism,
    exceptions,
    float_equality,
    shim_imports,
    units_literals,
)

__all__ = [
    "asserts",
    "determinism",
    "exceptions",
    "float_equality",
    "shim_imports",
    "units_literals",
]
