"""The repo-specific lint rules.

Importing this package registers every checker (the modules register
themselves via :func:`repro.analysis.base.register` at import time).
One module per rule keeps each invariant's logic, scope, and rationale
in one reviewable place; add new rules by dropping a module here and
importing it below.

Six rules are per-file; four (``layer-boundaries``, ``dead-export``,
``shim-freshness`` file-scoped on the declared shims, and
``event-contract``) enforce whole-program contracts — see
:mod:`repro.analysis.project` for the graph they run against.
"""

from repro.analysis.checkers import (  # noqa: F401  (registration imports)
    asserts,
    dead_export,
    determinism,
    event_contract,
    exceptions,
    float_equality,
    layer_boundaries,
    shim_freshness,
    shim_imports,
    units_literals,
)

__all__ = [
    "asserts",
    "dead_export",
    "determinism",
    "event_contract",
    "exceptions",
    "float_equality",
    "layer_boundaries",
    "shim_freshness",
    "shim_imports",
    "units_literals",
]
