"""``shim-freshness``: deprecated shims stay pure re-exports.

PR 3's ``no-shim-imports`` polices the *consumer* side of the shim
contract — internal code must import the planner, not the deprecated
``repro.core.capacity`` / ``repro.core.hybrid`` surfaces.  This rule
polices the *definition* side: a shim declared in
``[tool.mems-repro.lint.shims]`` may contain nothing but re-exports.
The day someone adds logic to a shim, the deprecation story is broken
twice over — new behaviour lives at the address we tell people to stop
using, and the planner copy silently diverges from the shim copy.

Allowed statements in a shim module:

* the module docstring;
* ``from __future__ import ...`` and plain imports (the re-exports);
* a literal ``__all__`` list/tuple;
* simple alias bindings of an imported name (``_max_feasible =
  max_feasible_real`` — compat aliases re-point, they don't wrap).

Everything else — function or class definitions, conditionals, calls,
computed values — is a finding pointing at the module named as the
shim's replacement.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from repro.analysis.base import Checker, Finding, register


def _module_tails(dotted: str) -> list[tuple[str, ...]]:
    """Path tails a dotted module may appear as on disk."""
    parts = dotted.split(".")
    return [(*parts[:-1], parts[-1] + ".py"),
            (*parts[-2:-1], parts[-1] + ".py")] if len(parts) > 1 else \
        [(parts[0] + ".py",)]


@register
class ShimFreshnessChecker(Checker):
    """Flag logic added to modules declared as pure re-export shims."""

    rule = "shim-freshness"
    description = ("modules declared in [tool.mems-repro.lint.shims] "
                   "must stay pure re-exports (no logic)")

    def shim_for(self, path: Path) -> tuple[str, str] | None:
        for shim, replacement in self.config.shims:
            for tail in _module_tails(shim):
                if tuple(path.parts[-len(tail):]) == tail:
                    return shim, replacement
        return None

    def applies_to(self, path: Path) -> bool:
        return self.shim_for(path) is not None

    def check(self, tree: ast.Module, source: str,
              path: Path) -> Iterator[Finding]:
        shim = self.shim_for(path)
        if shim is None:  # pragma: no cover - applies_to gates this
            return
        shim_name, replacement = shim
        imported: set[str] = set()
        for index, node in enumerate(tree.body):
            if isinstance(node, ast.Expr) and index == 0 and \
                    isinstance(node.value, ast.Constant) and \
                    isinstance(node.value.value, str):
                continue  # module docstring
            if isinstance(node, ast.Import):
                continue
            if isinstance(node, ast.ImportFrom):
                imported.update(alias.asname or alias.name
                                for alias in node.names)
                continue
            if isinstance(node, ast.Assign):
                targets = [t.id for t in node.targets
                           if isinstance(t, ast.Name)]
                if targets == ["__all__"] and \
                        isinstance(node.value, (ast.List, ast.Tuple)):
                    continue
                if targets and len(targets) == len(node.targets) and \
                        isinstance(node.value, ast.Name) and \
                        node.value.id in imported:
                    continue  # compat alias re-pointing an import
                yield self.finding(
                    path, node,
                    f"shim {shim_name} must stay a pure re-export of "
                    f"{replacement}; this assignment computes a value "
                    f"instead of aliasing an imported name")
                continue
            kind = type(node).__name__
            label = {"FunctionDef": "function definition",
                     "AsyncFunctionDef": "function definition",
                     "ClassDef": "class definition"}.get(
                kind, f"statement ({kind})")
            yield self.finding(
                path, node,
                f"shim {shim_name} must stay a pure re-export of "
                f"{replacement}; move this {label} into the "
                f"replacement module")
