"""``event-contract``: the observability surface is real, both ways.

The control plane (PR 7) speaks frozen event types; the runtime
exports counters and gauges.  Both surfaces rot silently: an event
nobody publishes is a dead API, an event nobody consumes is telemetry
noise, and a gauge that never reaches the dashboard, summary, or docs
is a number nobody can see.  No per-file rule can tell — publication
lives in the facade, consumption in handlers and docs, production in
the runtime, rendering in the metrics module.

Checked project-wide, from configuration
(``[tool.mems-repro.lint.contracts]``):

* every subclass of ``events-base`` defined in ``events-module`` must
  be **published** (instantiated somewhere in the project) and
  **consumed** (read — imported-and-used or dotted-referenced — by a
  module other than its publishers, or documented in the docs corpus;
  a bare re-export does not count);
* every counter name passed to ``<metrics>.count("...")`` and every
  ``gauges[...]`` key produced by a ``metric-modules`` file must
  appear in a ``metric-sinks`` file's string constants (the dashboard
  / summary renderers) or in the docs corpus.
"""

from __future__ import annotations

import re
from collections.abc import Iterator
from pathlib import Path

from repro.analysis.base import Finding, ProjectChecker, register
from repro.analysis.config import _endswith, _tail
from repro.analysis.project import ModuleSummary, ProjectGraph


def _mentioned(name: str, text: str) -> bool:
    return re.search(rf"\b{re.escape(name)}\b", text) is not None


@register
class EventContractChecker(ProjectChecker):
    """Flag unpublished/unconsumed events and invisible metrics."""

    rule = "event-contract"
    description = ("event types must be published and consumed; "
                   "exported counters/gauges must reach a sink or docs")

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        yield from self._check_events(graph)
        yield from self._check_metrics(graph)

    # -- events -----------------------------------------------------------

    def _event_types(self, events: ModuleSummary) -> dict[str, int]:
        base = self.config.contracts.events_base
        lines = {name: line for name, line, kind, _ in events.defs
                 if kind == "class"}
        types: set[str] = set()
        grew = True
        while grew:  # transitive subclasses within the events module
            grew = False
            for name, bases in events.class_bases:
                if name in types or name.startswith("_"):
                    continue
                for candidate in bases:
                    if candidate == base or \
                            candidate.endswith(f".{base}") or \
                            candidate in types:
                        types.add(name)
                        grew = True
                        break
        return {name: lines.get(name, 1) for name in sorted(types)}

    def _check_events(self, graph: ProjectGraph) -> Iterator[Finding]:
        module_name = self.config.contracts.events_module
        events = graph.modules.get(module_name)
        if events is None:
            return
        for name, line in self._event_types(events).items():
            dotted = f"{module_name}.{name}"
            publishers = {mod for mod, summary in graph.modules.items()
                          if dotted in summary.calls}
            consumers = set()
            for mod, summary in graph.modules.items():
                if mod == module_name or mod in publishers:
                    continue
                uses_name = (
                    any(target == module_name and sym == name
                        for target, sym, _ in summary.imports)
                    and name in summary.used_names)
                dotted_use = any(
                    use == dotted or use.startswith(dotted + ".")
                    for use in summary.dotted_uses)
                if uses_name or dotted_use:
                    consumers.add(mod)
            documented = _mentioned(name, graph.docs_text)
            if not publishers and not consumers and not documented:
                yield self.at(
                    events.path, line,
                    f"event type {name} is never published (no "
                    f"instantiation in the project) nor consumed; delete "
                    f"it or wire it into the control plane")
            elif not publishers:
                yield self.at(
                    events.path, line,
                    f"event type {name} is never published — nothing in "
                    f"the project instantiates it")
            elif not consumers and not documented:
                yield self.at(
                    events.path, line,
                    f"event type {name} is published but never consumed: "
                    f"no module besides its publisher reads it and the "
                    f"docs never mention it")

    # -- metrics ----------------------------------------------------------

    def _summaries_matching(self, graph: ProjectGraph,
                            specs: tuple[str, ...]) -> list[ModuleSummary]:
        tails = [_tail(spec) for spec in specs]
        return [summary for _, summary in sorted(graph.modules.items())
                if any(_endswith(Path(summary.path), tail)
                       for tail in tails)]

    def _check_metrics(self, graph: ProjectGraph) -> Iterator[Finding]:
        producers = self._summaries_matching(
            graph, self.config.contracts.metric_modules)
        sinks = self._summaries_matching(
            graph, self.config.contracts.metric_sinks)
        sink_text = "\n".join(
            string for sink in sinks for string in sink.strings)
        for producer in producers:
            surface = [("counter", name, line)
                       for name, line in producer.metric_counts]
            surface.extend(("gauge", name, line)
                           for name, line in producer.metric_gauges)
            seen: set[tuple[str, str]] = set()
            for kind, name, line in surface:
                if (kind, name) in seen:
                    continue
                seen.add((kind, name))
                if _mentioned(name, sink_text) or \
                        _mentioned(name, graph.docs_text):
                    continue
                yield self.at(
                    producer.path, line,
                    f"{kind} {name!r} is exported by the runtime but "
                    f"never appears in a metric sink "
                    f"(dashboard/summary) or the docs")
