"""``unit-literals``: conversions go through :mod:`repro.units`.

The whole time-cycle analysis works in one unit system — bytes,
bytes/second, seconds (decimal SI, the paper's Table 2 convention) —
and :mod:`repro.units` is the single place the conversion constants
live.  A raw ``1e6`` at an API boundary is either a duplicated
constant (drift risk) or, worse, a binary-convention ``1 << 20``
silently off by 4.9%.  This rule flags:

* decimal mega/giga/tera magnitudes (``1_000_000``, ``1e6``, ...) in
  any spelling — use ``MB``/``GB``/``TB``;
* kilo magnitudes only in conversion-style spellings (``1_000``,
  ``1e3``); a plain ``1000`` (a count, a dollar figure) is not
  second-guessed;
* any binary-convention value (``1024``, ``1048576``, ``1 << 20``):
  this library is decimal throughout, so these are wrong in *every*
  spelling.

Sub-unity magnitudes (``1e-3``, ``1e-6``) are deliberately *not*
flagged: in this codebase they are overwhelmingly relative tolerances
(``1e-6 * max(demand, 1.0)``), and a rule that is half suppressions
enforces nothing.  Second->millisecond conversions are still caught on
the multiplicative side (``* 1e3``).

``src/repro/units.py`` itself is exempt (via the config scope's
``exclude-files``) — it defines the constants.
Non-unit uses of a flagged magnitude (e.g. a search bound of a million
iterations) carry an inline suppression naming this rule.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from repro.analysis.base import Checker, Finding, register

#: Decimal magnitudes flagged in any spelling, with the constant to use.
DECIMAL_ANY = {10**6: "MB", 10**9: "GB", 10**12: "TB"}

#: Kilo magnitude: flagged only in conversion-style spellings.
KILO = 1000

#: Binary-convention magnitudes (wrong in this decimal library).
BINARY = frozenset(
    {1024, 1024**2, 1024**3, 1024**4})  # repro-lint: disable=unit-literals

#: Shift amounts of the ``1 << n`` binary spellings.
BINARY_SHIFTS = frozenset({10, 20, 30, 40})


def _literal_text(node: ast.Constant, source: str) -> str:
    segment = ast.get_source_segment(source, node)
    return segment if segment is not None else repr(node.value)


@register
class UnitLiteralsChecker(Checker):
    """Flag magic unit-conversion literals outside ``repro.units``."""

    rule = "unit-literals"
    description = ("no magic unit literals (1e6, 1_000_000, 1024, "
                   "1 << 20); use the repro.units constants")

    def check(self, tree: ast.Module, source: str,
              path: Path) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.LShift):
                left, right = node.left, node.right
                if (isinstance(left, ast.Constant) and left.value == 1
                        and isinstance(right, ast.Constant)
                        and right.value in BINARY_SHIFTS):
                    yield self.finding(
                        path, node,
                        f"binary-convention 1 << {right.value}; this "
                        f"library is decimal (SI) — use repro.units")
                continue
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            magnitude = abs(value)
            text = _literal_text(node, source)
            if magnitude in BINARY:
                yield self.finding(
                    path, node,
                    f"binary-convention literal {text}; this library is "
                    f"decimal (SI, 1 MB = 10^6 B) — use repro.units")
            elif magnitude in DECIMAL_ANY:
                yield self.finding(
                    path, node,
                    f"magic unit literal {text}; use repro.units."
                    f"{DECIMAL_ANY[magnitude]}")
            elif magnitude == KILO and ("_" in text
                                        or "e" in text.lower()):
                yield self.finding(
                    path, node,
                    f"magic unit literal {text}; use repro.units.KB "
                    f"(or divide by MS for second->millisecond)")
