"""``no-shim-imports``: internal code uses the planner, not its shims.

PR 2 collapsed the duplicated capacity/hybrid solvers into the unified
planning layer; :mod:`repro.core.capacity` and :mod:`repro.core.hybrid`
remain only as deprecated re-export shims for external callers.  An
*internal* import through a shim re-entangles the layers the refactor
separated (and silently bypasses any future shim deprecation warning),
so library modules must import the planner API from
:mod:`repro.planner` (:mod:`~repro.planner.throughput`,
:mod:`~repro.planner.hybrid`) instead.  The shim modules themselves are
exempt — re-exporting is their job.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from repro.analysis.base import Checker, Finding, register


def _shim_of(shims: dict[str, str], module: str) -> str | None:
    for shim in shims:
        if module == shim or module.startswith(shim + "."):
            return shim
    return None


@register
class NoShimImportsChecker(Checker):
    """Flag imports of the deprecated ``core.capacity``/``core.hybrid``.

    The shim map (and the shim files' own exemption) comes from
    ``[tool.mems-repro.lint.shims]`` — the same declaration the
    ``shim-freshness`` rule enforces on the definition side.
    """

    rule = "no-shim-imports"
    description = ("import the planner API from repro.planner, not the "
                   "deprecated core.capacity / core.hybrid shims")

    def check(self, tree: ast.Module, source: str,
              path: Path) -> Iterator[Finding]:
        shims = self.config.shim_map()
        parents = {shim.rpartition(".")[0] for shim in shims if "." in shim}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    shim = _shim_of(shims, alias.name)
                    if shim is not None:
                        yield self.finding(
                            path, node,
                            f"import of deprecated shim {shim}; use "
                            f"{shims[shim]}")
            elif isinstance(node, ast.ImportFrom) and node.module:
                shim = _shim_of(shims, node.module)
                if shim is not None:
                    yield self.finding(
                        path, node,
                        f"import from deprecated shim {shim}; use "
                        f"{shims[shim]}")
                elif node.module in parents:
                    for alias in node.names:
                        shim = _shim_of(shims, f"{node.module}.{alias.name}")
                        if shim is not None:
                            yield self.finding(
                                path, node,
                                f"import of deprecated shim module "
                                f"{alias.name!r} from {node.module}; use "
                                f"{shims[shim]}")
