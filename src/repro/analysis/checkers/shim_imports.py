"""``no-shim-imports``: internal code uses the planner, not its shims.

PR 2 collapsed the duplicated capacity/hybrid solvers into the unified
planning layer; :mod:`repro.core.capacity` and :mod:`repro.core.hybrid`
remain only as deprecated re-export shims for external callers.  An
*internal* import through a shim re-entangles the layers the refactor
separated (and silently bypasses any future shim deprecation warning),
so library modules must import the planner API from
:mod:`repro.planner` (:mod:`~repro.planner.throughput`,
:mod:`~repro.planner.hybrid`) instead.  The shim modules themselves are
exempt — re-exporting is their job.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from repro.analysis.base import Checker, Finding, register

#: The deprecated shim modules, and what replaces each.
SHIMS = {
    "repro.core.capacity": "repro.planner.throughput",
    "repro.core.hybrid": "repro.planner.hybrid",
}


def _shim_of(module: str) -> str | None:
    for shim in SHIMS:
        if module == shim or module.startswith(shim + "."):
            return shim
    return None


@register
class NoShimImportsChecker(Checker):
    """Flag imports of the deprecated ``core.capacity``/``core.hybrid``."""

    rule = "no-shim-imports"
    description = ("import the planner API from repro.planner, not the "
                   "deprecated core.capacity / core.hybrid shims")

    def applies_to(self, path: Path) -> bool:
        tail = tuple(path.parts[-2:])
        return tail not in (("core", "capacity.py"), ("core", "hybrid.py"))

    def check(self, tree: ast.Module, source: str,
              path: Path) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    shim = _shim_of(alias.name)
                    if shim is not None:
                        yield self.finding(
                            path, node,
                            f"import of deprecated shim {shim}; use "
                            f"{SHIMS[shim]}")
            elif isinstance(node, ast.ImportFrom) and node.module:
                shim = _shim_of(node.module)
                if shim is not None:
                    yield self.finding(
                        path, node,
                        f"import from deprecated shim {shim}; use "
                        f"{SHIMS[shim]}")
                elif node.module == "repro.core":
                    for alias in node.names:
                        shim = _shim_of(f"repro.core.{alias.name}")
                        if shim is not None:
                            yield self.finding(
                                path, node,
                                f"import of deprecated shim module "
                                f"{alias.name!r} from repro.core; use "
                                f"{SHIMS[shim]}")
