"""``determinism``: the seed guarantee of the stochastic layers.

The runtime promises that a fixed seed reproduces a run byte-for-byte
(``docs/RUNTIME.md``), and every simulation/workload entry point takes
a ``seed``.  That only holds while *all* randomness flows through an
injected ``numpy.random.Generator`` and nothing reads the wall clock.
This rule bans, inside the scope declared by
``[tool.mems-repro.lint.scopes.determinism]`` — the stochastic layers
``simulation/``, ``runtime/``, ``workloads/``, ``perf/``, ``vod/``,
``service/`` plus the file-scoped ``planner/incremental.py`` (whose
warm-start replay must be bit-reproducible):

* wall-clock reads (``time.time()``, ``time.monotonic()``,
  ``datetime.now()``, ...) — simulated time comes from the event
  engine.  The one sanctioned read is the bench timer helper in
  ``perf/bench.py``, which carries a reviewed inline suppression;
* the :mod:`random` module's global functions (seeded or not — the
  global state is shared across callers and not part of any run's
  seed);
* :mod:`numpy.random` *module-level* state (``np.random.seed``,
  ``np.random.rand``, ...).  Constructing generators
  (``np.random.default_rng(seed)``) and naming types
  (``np.random.Generator``) is fine — that is the sanctioned idiom;
* process-pool construction (``ProcessPoolExecutor``,
  ``multiprocessing.Pool``, thread pools) — fan-out must go through
  :func:`repro.perf.parallel.sweep_map`, whose items carry explicit
  seeds and whose ordered gathering keeps results byte-identical to a
  serial run.  ``parallel.py``'s own pool carries the reviewed
  suppression.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from repro.analysis.base import Checker, Finding, register

#: Fully-qualified callables that read the wall clock.
WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: numpy.random attributes that do NOT touch global RNG state.
NUMPY_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
})

#: Pool constructors whose scheduling is nondeterministic; fan-out in
#: the seeded layers must go through repro.perf.parallel.sweep_map.
POOL_CONSTRUCTORS = frozenset({
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "concurrent.futures.thread.ThreadPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
    "multiprocessing.pool.ThreadPool",
    "multiprocessing.dummy.Pool",
})


def _dotted(node: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]`` (None for non-name chains)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return parts[::-1]


class _ImportMap(ast.NodeVisitor):
    """Local name -> canonical dotted prefix, from the file's imports."""

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            canonical = alias.name if alias.asname else local
            self.aliases[local] = canonical

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for alias in node.names:
            local = alias.asname or alias.name
            self.aliases[local] = f"{node.module}.{alias.name}"


@register
class DeterminismChecker(Checker):
    """Flag wall-clock reads and global-RNG use in the seeded layers."""

    rule = "determinism"
    description = ("no wall clocks or global RNG state in the seeded "
                   "layers (scoped via config); inject a seeded Generator")

    def check(self, tree: ast.Module, source: str,
              path: Path) -> Iterator[Finding]:
        imports = _ImportMap()
        imports.visit(tree)
        aliases = imports.aliases
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            parts = _dotted(node.func)
            if parts is None:
                continue
            head = aliases.get(parts[0])
            if head is None:
                continue
            full = ".".join([head, *parts[1:]])
            if full in WALL_CLOCK:
                yield self.finding(
                    path, node,
                    f"{full}() reads the wall clock; simulated time comes "
                    f"from the event engine (Simulator.now)")
            elif full in POOL_CONSTRUCTORS:
                yield self.finding(
                    path, node,
                    f"{full}() builds an ad-hoc worker pool; fan out "
                    f"through repro.perf.parallel.sweep_map (explicit "
                    f"per-item seeds, ordered gathering)")
            elif full == "random" or full.startswith("random."):
                yield self.finding(
                    path, node,
                    f"{full}() uses the random module's global state; "
                    f"inject a seeded numpy Generator instead")
            elif full.startswith("numpy.random."):
                attr = full.removeprefix("numpy.random.").split(".")[0]
                if attr not in NUMPY_RANDOM_ALLOWED:
                    yield self.finding(
                        path, node,
                        f"numpy.random.{attr} mutates/reads numpy's global "
                        f"RNG; use numpy.random.default_rng(seed)")
