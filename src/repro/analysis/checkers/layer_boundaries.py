"""``layer-boundaries``: the declared architecture DAG holds.

The repository's layering — devices at the bottom, planner over core,
runtime over simulation/scheduling, service over runtime, experiments
over everything — is what makes the roadmap refactors (sharded
cluster runtime, pluggable middle tiers) tractable: a lower layer that
quietly grows an upward import couples the stack in ways no per-file
rule can see.

The DAG lives declaratively in ``pyproject.toml``::

    [tool.mems-repro.lint.layers.allow]
    core = ["devices"]
    planner = ["core", "devices"]
    ...

    [tool.mems-repro.lint.layers.exceptions]
    "repro/__init__.py" = ["*"]        # the public-API facade
    "core/capacity.py" = ["planner"]   # reviewed re-export shim

A module's layer is the first package level below the import root
(``repro/planner/search.py`` -> ``planner``; top-level modules like
``repro/errors.py`` form the implicit ``root`` layer every other
layer may use).  Importing your own layer and ``root`` is always
allowed; everything else must be declared in ``allow`` (validated
acyclic at load time) or carried by a named per-file exception.
Undeclared layers are themselves findings, so a new top-level package
cannot land without stating its place in the architecture.
"""

from __future__ import annotations

from collections.abc import Iterator
from pathlib import Path

from repro.analysis.base import Finding, ProjectChecker, register
from repro.analysis.config import ANY_LAYER, ROOT_LAYER
from repro.analysis.project import ProjectGraph


@register
class LayerBoundariesChecker(ProjectChecker):
    """Flag imports that cross the declared layer DAG upward."""

    rule = "layer-boundaries"
    description = ("project imports must follow the layer DAG declared "
                   "in [tool.mems-repro.lint.layers]")

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        layers = self.config.layers
        for module in sorted(graph.modules):
            summary = graph.modules[module]
            layer = graph.layer_of(module)
            if layer is None:  # pragma: no cover - graph only holds project
                continue
            allowed = layers.allowed(layer)
            extra = layers.extra_for(Path(summary.path))
            targets = [(target, line) for target, _, line in summary.imports]
            targets.extend(summary.star_imports)
            seen: set[tuple[str, int]] = set()
            for target, line in targets:
                target_layer = graph.layer_of(target)
                if target_layer is None or target_layer in (layer,
                                                            ROOT_LAYER):
                    continue
                if ANY_LAYER in extra or target_layer in extra:
                    continue
                if allowed is None:
                    key = (layer, line)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self.at(
                        summary.path, line,
                        f"layer {layer!r} is not declared in "
                        f"[tool.mems-repro.lint.layers.allow]; every "
                        f"layer must state its allowed imports")
                    continue
                if target_layer not in allowed:
                    key = (target_layer, line)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self.at(
                        summary.path, line,
                        f"layer {layer!r} may not import layer "
                        f"{target_layer!r} (module {target}); allowed: "
                        f"{', '.join(allowed) or '<none>'}")
