"""``exception-hygiene``: library failures are :class:`ReproError`\\ s.

The exception hierarchy in :mod:`repro.errors` is a public contract:
callers catch ``ReproError`` to handle "the library refused" while
still distinguishing configuration mistakes from feasibility failures.
A stray ``raise ValueError`` punches a hole in that contract — the
caller's ``except ReproError`` misses it — so library code raises:

* a :class:`~repro.errors.ReproError` subclass for every caller-visible
  failure (malformed parameters, infeasible loads, ...);
* ``RuntimeError`` (e.g. via :func:`repro.errors.require`) for internal
  "unreachable" invariants, which are bugs, not API outcomes;
* ``NotImplementedError`` for abstract methods.

Bare re-raises (``raise`` inside ``except``) and raising pre-built
exception *objects* (``raise self.failure``) are out of scope — the
rule looks at the class being constructed at the raise site.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from repro.analysis.base import Checker, Finding, register

#: Builtin exception classes library code must not raise directly.
BANNED = frozenset({
    "Exception", "BaseException", "ValueError", "TypeError", "KeyError",
    "IndexError", "LookupError", "ArithmeticError", "ZeroDivisionError",
    "AssertionError", "StopIteration",
})


@register
class ExceptionHygieneChecker(Checker):
    """Flag ``raise`` of banned builtin exception classes."""

    rule = "exception-hygiene"
    description = ("raise ReproError subclasses (or RuntimeError for "
                   "internal invariants), not bare builtins")

    def check(self, tree: ast.Module, source: str,
              path: Path) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name: str | None = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in BANNED:
                yield self.finding(
                    path, node,
                    f"raise {name}: library errors derive from "
                    f"repro.errors.ReproError (use ConfigurationError / "
                    f"AdmissionError / ... , or RuntimeError for internal "
                    f"invariants)")
