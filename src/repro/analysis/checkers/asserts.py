"""``no-bare-assert``: library code must not rely on ``assert``.

``python -O`` compiles ``assert`` statements away.  PR 2 shipped a bug
where exactly that happened: an infeasibility guard in the hybrid-split
optimizer was an ``assert``, so the optimized interpreter returned a
bogus design instead of raising.  Library invariants must therefore be
explicit ``raise`` statements — :class:`~repro.errors.ReproError`
subclasses for caller-visible contracts, ``RuntimeError`` (e.g. via
:func:`repro.errors.require`) for internal "unreachable" checks.

Tests are exempt by construction: the gate runs over ``src/`` and
``pytest`` asserts live under ``tests/``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from repro.analysis.base import Checker, Finding, register


@register
class NoBareAssertChecker(Checker):
    """Flag every ``assert`` statement."""

    rule = "no-bare-assert"
    description = ("no assert statements in library code "
                   "(python -O strips them); raise explicitly")

    def check(self, tree: ast.Module, source: str,
              path: Path) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assert):
                condition = ast.unparse(node.test)
                if len(condition) > 60:
                    condition = condition[:57] + "..."
                yield self.finding(
                    path, node,
                    f"assert vanishes under python -O; raise a ReproError "
                    f"subclass or use repro.errors.require "
                    f"(condition: {condition})")
