"""``float-equality``: no ``==``/``!=`` against float expressions.

The analytical layers (``core/``, ``planner/``) compute DRAM sizes and
cycle lengths through chains of float arithmetic; exact equality on
such values is order-of-evaluation dependent (the planner's memoization
makes "the same" quantity arrive via different expression trees).  The
experiment runners (``experiments/``) consume those values and carry
the same hazard into their table/figure assembly, so they are in scope
too (comparisons that are *deliberately* exact — catalog cross-checks
against integer-valued floats — carry reviewed inline suppressions).
The VoD subsystem (``vod/``) sizes prefixes and byte fractions through
the same float chains and joins the scope.  The binding directories
live in ``[tool.mems-repro.lint.scopes.float-equality]``, not here.
The codebase convention is ``math.isclose`` / an explicit tolerance —
see the ``1e-12``-banded comparisons in the hybrid optimizer — and
``math.isinf`` for the ``float("inf")`` sentinels.

Static analysis cannot type arbitrary expressions, so the rule is
deliberately literal-driven: a comparison is flagged when either side
is *syntactically* float-valued — a float literal (``0.0``, ``1e-9``),
a ``float(...)`` call (``float("inf")``), or a unary ``-`` of either.
Integer-literal comparisons (``n == 0``) pass: they are how the
codebase spells "empty population" on counts.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from repro.analysis.base import Checker, Finding, register


def _is_float_call(node: ast.expr) -> bool:
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "float")


def _is_float_like(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op,
                                                    (ast.UAdd, ast.USub)):
        return _is_float_like(node.operand)
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    return _is_float_call(node)


def _is_inf(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp):
        return _is_inf(node.operand)
    if _is_float_call(node):
        args = node.args
        return (len(args) == 1 and isinstance(args[0], ast.Constant)
                and isinstance(args[0].value, str)
                and args[0].value.lower().lstrip("+-") in ("inf", "infinity"))
    if isinstance(node, ast.Attribute):
        return node.attr == "inf"  # math.inf / np.inf
    return False


@register
class FloatEqualityChecker(Checker):
    """Flag ``==`` / ``!=`` with a syntactically float operand."""

    rule = "float-equality"
    description = ("no ==/!= against float expressions in the analytical "
                   "layers (scoped via config); use math.isclose / "
                   "math.isinf / a tolerance")

    def check(self, tree: ast.Module, source: str,
              path: Path) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if not (_is_float_like(left) or _is_float_like(right)):
                    continue
                if _is_inf(left) or _is_inf(right):
                    hint = "use math.isinf(...)"
                else:
                    hint = "use math.isclose(...) or an explicit tolerance"
                yield self.finding(
                    path, node,
                    f"float equality `{ast.unparse(node)}`; {hint}")
