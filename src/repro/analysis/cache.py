"""Incremental result cache: warm re-lints re-parse only changed files.

The whole-program pass reads every module under ``src/`` on every
invocation; without a cache that is ~100 parses plus checker walks
per run, which turns the pre-commit loop into a coffee break.  The
cache stores, per file, the content digest plus everything the engine
derives from the parse — the file-rule findings, the module's
:class:`~repro.analysis.project.ModuleSummary`, and its suppression
map — so an unchanged file costs one ``sha256`` of its bytes and zero
parses, while the graph rules still see a complete, current project.

Correctness keying, not freshness guessing:

* each entry is keyed by the file's **content digest** — touching a
  file without changing it stays a cache hit (no mtime heuristics);
* the whole cache is keyed by a **fingerprint** of the cache schema,
  the Python version, the resolved :class:`LintConfig`, and every
  registered rule's ``version`` — editing the config or bumping a
  rule's logic discards all cached results at once, so a stale cache
  can never mask a new violation.

Entries store the findings of *every* file rule (the parse dominates;
running the extra checkers is noise), and the engine filters to the
requested ``--rule`` selection on read — so warm runs hit regardless
of which rule subset each invocation asks for.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import Finding, rule_versions
from repro.analysis.config import LintConfig
from repro.analysis.project import SUMMARY_VERSION, ModuleSummary

#: Bump when the cache entry layout changes.
CACHE_SCHEMA = 1

#: Cache file name, created in the project root (gitignored).
CACHE_FILENAME = ".lint-cache.json"


def content_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def cache_fingerprint(config: LintConfig) -> str:
    """Hash of everything that invalidates the whole cache at once."""
    payload = json.dumps({
        "cache_schema": CACHE_SCHEMA,
        "summary_version": SUMMARY_VERSION,
        "python": f"{sys.version_info[0]}.{sys.version_info[1]}",
        "config": config.fingerprint(),
        "rules": list(rule_versions()),
    }, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class FileEntry:
    """Everything the engine derives from one parsed file."""

    digest: str
    #: Post-suppression findings of every file rule (engine filters).
    findings: list[Finding] = field(default_factory=list)
    #: Module summary for the graph phase (None for parse errors or
    #: files outside the project's import root).
    summary: ModuleSummary | None = None
    #: Logical-line suppression map (line -> sorted rule list) — the
    #: graph phase applies it to whole-program findings.
    suppressions: dict[int, list[str]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "digest": self.digest,
            "findings": [f.to_dict() for f in self.findings],
            "summary": (None if self.summary is None
                        else self.summary.to_dict()),
            "suppressions": {str(line): rules for line, rules
                             in sorted(self.suppressions.items())},
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> FileEntry:
        summary = data.get("summary")
        return cls(
            digest=str(data["digest"]),
            findings=[Finding.from_dict(f)  # type: ignore[arg-type]
                      for f in data.get("findings", ())],
            summary=(None if summary is None
                     else ModuleSummary.from_dict(summary)),  # type: ignore[arg-type]
            suppressions={int(line): list(rules) for line, rules
                          in data.get("suppressions", {}).items()})  # type: ignore[union-attr]


class IncrementalCache:
    """The on-disk cache: one JSON file, atomic rewrite per run."""

    def __init__(self, path: Path, fingerprint: str) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self._entries: dict[str, FileEntry] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0

    @classmethod
    def load(cls, path: Path, config: LintConfig) -> IncrementalCache:
        """Read the cache, discarding it wholesale on any mismatch."""
        fingerprint = cache_fingerprint(config)
        cache = cls(path, fingerprint)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if not isinstance(payload, dict) or \
                payload.get("fingerprint") != fingerprint:
            return cache
        try:
            for key, raw in payload.get("files", {}).items():
                cache._entries[key] = FileEntry.from_dict(raw)
        except (KeyError, TypeError, ValueError):
            cache._entries.clear()
        return cache

    def lookup(self, key: str, digest: str) -> FileEntry | None:
        """The entry for ``key`` if its content still matches."""
        entry = self._entries.get(key)
        if entry is not None and entry.digest == digest:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(self, key: str, entry: FileEntry) -> None:
        previous = self._entries.get(key)
        self._entries[key] = entry
        if previous is None or previous.digest != entry.digest:
            self._dirty = True

    def prune(self, live_keys: set[str]) -> None:
        """Drop entries for files no longer part of the run's universe."""
        stale = [key for key in self._entries if key not in live_keys]
        for key in stale:
            del self._entries[key]
            self._dirty = True

    def write(self) -> None:
        """Persist (atomic rename); best-effort on read-only trees."""
        if not self._dirty:
            return
        payload = {
            "schema": CACHE_SCHEMA,
            "fingerprint": self.fingerprint,
            "files": {key: entry.to_dict()
                      for key, entry in sorted(self._entries.items())},
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True),
                           encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
        self._dirty = False


class NullCache(IncrementalCache):
    """``--no-cache``: every lookup misses, nothing touches disk."""

    def __init__(self) -> None:
        super().__init__(Path(os.devnull), fingerprint="")

    def lookup(self, key: str, digest: str) -> FileEntry | None:
        self.misses += 1
        return None

    def write(self) -> None:
        return
