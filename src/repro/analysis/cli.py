"""The ``mems-repro lint`` driver (argparse wiring lives in
:mod:`repro.experiments.cli`; the behaviour — and its exit-code
contract — lives here so it is importable and testable without a
subprocess)."""

from __future__ import annotations

import sys
from pathlib import Path
from typing import TextIO

from repro.analysis.base import all_rules
from repro.analysis.engine import analyze_paths
from repro.analysis.reporters import (
    EXIT_USAGE,
    exit_code,
    render_json,
    render_text,
)
from repro.errors import ConfigurationError


def run_lint(paths: list[str], *, rules: list[str] | None = None,
             json_output: bool = False, list_rules: bool = False,
             stream: TextIO | None = None) -> int:
    """Lint ``paths`` and print a report; returns the process exit code.

    ``rules`` restricts the run to the named checkers; unknown names
    are a *usage* error (exit ``EXIT_USAGE``), not a finding.
    """
    out = sys.stdout if stream is None else stream
    if list_rules:
        for rule, checker_class in all_rules().items():
            print(f"{rule:>20}  {checker_class.description}", file=out)
        return 0
    try:
        findings = analyze_paths([Path(p) for p in paths], rules)
    except ConfigurationError as exc:
        print(f"usage error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    render = render_json if json_output else render_text
    print(render(findings), file=out)
    return exit_code(findings)
