"""The ``mems-repro lint`` driver (argparse wiring lives in
:mod:`repro.experiments.cli`; the behaviour — and its exit-code
contract — lives here so it is importable and testable without a
subprocess)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path
from typing import TextIO

from repro.analysis.base import all_rules
from repro.analysis.baseline import render_baseline
from repro.analysis.engine import baseline_key, run_analysis
from repro.analysis.reporters import (
    EXIT_USAGE,
    exit_code,
    render_json,
    render_sarif,
    render_text,
)
from repro.errors import ConfigurationError


def parse_porcelain(text: str) -> list[str]:
    """``git status --porcelain`` output -> changed ``.py`` paths.

    Handles the rename form (``R  old -> new``: the new name is the
    one on disk) and skips deletions (nothing left to lint).
    """
    changed: list[str] = []
    for line in text.splitlines():
        if len(line) < 4:
            continue
        status, payload = line[:2], line[3:]
        if "D" in status:
            continue
        if "->" in payload:
            payload = payload.split("->", 1)[1].strip()
        payload = payload.strip().strip('"')
        if payload.endswith(".py"):
            changed.append(payload)
    return changed


def _git_status_porcelain() -> str:
    """Shell out for the working-tree status (monkeypatched in tests)."""
    try:
        proc = subprocess.run(["git", "status", "--porcelain"],
                              capture_output=True, text=True, check=True)
    except (OSError, subprocess.CalledProcessError) as exc:
        raise ConfigurationError(
            f"--changed needs a git working tree: {exc}") from exc
    return proc.stdout


def run_lint(paths: list[str], *, rules: list[str] | None = None,
             json_output: bool = False, list_rules: bool = False,
             stream: TextIO | None = None, jobs: int = 1,
             changed: bool = False, sarif_path: str | None = None,
             no_cache: bool = False, baseline: str | None = None,
             write_baseline: str | None = None) -> int:
    """Lint ``paths`` and print a report; returns the process exit code.

    ``rules`` restricts the run to the named checkers; unknown names
    are a *usage* error (exit ``EXIT_USAGE``), not a finding.
    ``changed`` swaps the path list for the ``.py`` files ``git status
    --porcelain`` reports as modified (the pre-commit loop).
    ``write_baseline`` records the current findings as the ratchet
    baseline instead of failing on them.
    """
    out = sys.stdout if stream is None else stream
    if list_rules:
        for rule, checker_class in all_rules().items():
            print(f"{rule:>20}  {checker_class.description}", file=out)
        return 0
    try:
        if changed:
            paths = parse_porcelain(_git_status_porcelain())
        result = run_analysis(
            [Path(p) for p in paths], rules, jobs=jobs,
            use_cache=not no_cache,
            baseline_path=Path(baseline) if baseline else None,
            use_baseline=write_baseline is None)
    except ConfigurationError as exc:
        print(f"usage error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    findings = result.findings
    if write_baseline is not None:
        keys = [baseline_key(f.path, result.config) for f in findings]
        Path(write_baseline).write_text(
            render_baseline(findings, keys=keys), encoding="utf-8")
        print(f"wrote baseline for {len(findings)} finding"
              f"{'s' if len(findings) != 1 else ''} to {write_baseline}",
              file=out)
        return 0
    if sarif_path is not None:
        Path(sarif_path).write_text(render_sarif(findings) + "\n",
                                    encoding="utf-8")
    render = render_json if json_output else render_text
    print(render(findings), file=out)
    return exit_code(findings)
