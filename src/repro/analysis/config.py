"""Declarative lint configuration (``[tool.mems-repro.lint]``).

PR 3's checkers hardcoded their directory scopes as module constants,
which meant every PR that added a layer re-edited checker source (the
"widen the scope" ritual of PRs 4-7).  The scopes — and everything
else the whole-program pass needs to know about the repository's
architecture — now live declaratively in ``pyproject.toml``:

* ``[tool.mems-repro.lint.scopes.<rule>]`` — per-rule ``dirs`` /
  ``files`` / ``exclude-files`` path scopes;
* ``[tool.mems-repro.lint.shims]`` — the deprecated pure-re-export
  modules and what replaces each (shared by ``no-shim-imports`` and
  ``shim-freshness``);
* ``[tool.mems-repro.lint.layers]`` — the architecture DAG: which
  layer may import which, plus named per-file exceptions;
* ``[tool.mems-repro.lint.contracts]`` — the event/metric contract
  surfaces checked by ``event-contract``.

:func:`find_project` walks up from the linted paths to the nearest
``pyproject.toml``, so fixture mini-projects under ``tests/`` carry
their own configuration.  When no project file is found the
:data:`DEFAULT` configuration — byte-equal to the repository's own
``pyproject`` values, pinned by a test — applies, so library calls
like ``analyze_paths([...])`` keep their historical behaviour.

Everything in :class:`LintConfig` is a frozen tuple tree: hashable (it
keys the incremental cache fingerprint) and picklable (it rides to the
``sweep_map`` workers of a ``--jobs N`` run).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.errors import ConfigurationError

#: Marker in a layer exception meaning "may import any layer".
ANY_LAYER = "*"

#: The layer name of modules sitting directly in the package root
#: (``errors.py``, ``units.py``, ``__init__.py``).
ROOT_LAYER = "root"


def _tail(spec: str) -> tuple[str, ...]:
    """``"planner/incremental.py"`` -> ``("planner", "incremental.py")``."""
    return tuple(part for part in spec.split("/") if part)


def _endswith(path: Path, tail: tuple[str, ...]) -> bool:
    return tuple(path.parts[-len(tail):]) == tail if tail else False


@dataclass(frozen=True)
class ScopeSpec:
    """Where one rule binds: directory names, file tails, exclusions.

    ``dirs`` match any path component (the PR-3 semantics: fixture
    trees engage scoped rules simply by mirroring directory names);
    ``files`` and ``exclude_files`` match path tails like
    ``planner/incremental.py``.  An empty ``dirs``+``files`` scope
    means "everywhere" (minus the exclusions).
    """

    dirs: tuple[str, ...] = ()
    files: tuple[str, ...] = ()
    exclude_files: tuple[str, ...] = ()

    def applies_to(self, path: Path) -> bool:
        for spec in self.exclude_files:
            if _endswith(path, _tail(spec)):
                return False
        if not self.dirs and not self.files:
            return True
        if set(self.dirs).intersection(path.parts):
            return True
        return any(_endswith(path, _tail(spec)) for spec in self.files)


@dataclass(frozen=True)
class LayerSpec:
    """The declared architecture DAG.

    ``allow`` maps each layer to the layers it may import (its own
    layer and :data:`ROOT_LAYER` are always allowed); ``exceptions``
    maps a file tail to extra allowed layers (``"*"`` = all) for the
    handful of reviewed seams: re-export shims, the public-API facade,
    the benchmark harness.
    """

    allow: tuple[tuple[str, tuple[str, ...]], ...] = ()
    exceptions: tuple[tuple[str, tuple[str, ...]], ...] = ()

    def allowed(self, layer: str) -> tuple[str, ...] | None:
        for name, targets in self.allow:
            if name == layer:
                return targets
        return None

    def extra_for(self, path: Path) -> tuple[str, ...]:
        extra: list[str] = []
        for spec, targets in self.exceptions:
            if _endswith(path, _tail(spec)):
                extra.extend(targets)
        return tuple(extra)

    def require_acyclic(self) -> None:
        """Raise :class:`ConfigurationError` if ``allow`` has a cycle."""
        allow = {name: set(targets) for name, targets in self.allow}
        state: dict[str, int] = {}  # 0 visiting, 1 done

        def visit(node: str, trail: tuple[str, ...]) -> None:
            if state.get(node) == 1:
                return
            if state.get(node) == 0:
                cycle = " -> ".join((*trail, node))
                raise ConfigurationError(
                    f"layer graph is not a DAG: {cycle}")
            state[node] = 0
            for nxt in sorted(allow.get(node, ())):
                if nxt in allow:
                    visit(nxt, (*trail, node))
            state[node] = 1

        for name in sorted(allow):
            visit(name, ())


@dataclass(frozen=True)
class ContractSpec:
    """The surfaces the ``event-contract`` rule certifies.

    ``events_module``/``events_base`` name the frozen event hierarchy;
    ``metric_modules`` are the file tails scanned for exported counter
    and gauge names; a name or event type is *consumed* when it appears
    in a ``metric_sinks`` file's string constants or anywhere in the
    ``docs`` corpus (paths relative to the project root).
    """

    events_module: str = "repro.service.events"
    events_base: str = "ServiceEvent"
    metric_modules: tuple[str, ...] = ("runtime/runtime.py",)
    metric_sinks: tuple[str, ...] = ("runtime/metrics.py",)
    docs: tuple[str, ...] = ("docs", "README.md")


#: The repository's own scopes — the single in-code fallback, asserted
#: equal to the ``pyproject.toml`` values by the config round-trip test.
DEFAULT_SCOPES: tuple[tuple[str, ScopeSpec], ...] = (
    ("determinism", ScopeSpec(
        dirs=("simulation", "runtime", "workloads", "perf", "vod",
              "service"),
        files=("planner/incremental.py", "planner/batch.py"))),
    ("float-equality", ScopeSpec(
        dirs=("core", "planner", "experiments", "vod", "service"),
        files=("benchmarks/regress.py",))),
    ("no-shim-imports", ScopeSpec(
        exclude_files=("core/capacity.py", "core/hybrid.py"))),
    ("unit-literals", ScopeSpec(exclude_files=("units.py",))),
)

DEFAULT_SHIMS: tuple[tuple[str, str], ...] = (
    ("repro.core.capacity", "repro.planner.throughput"),
    ("repro.core.hybrid", "repro.planner.hybrid"),
)

DEFAULT_LAYERS = LayerSpec(
    allow=(
        ("analysis", ("perf",)),
        ("core", ("devices",)),
        ("devices", ()),
        ("experiments", ("analysis", "core", "devices", "perf", "planner",
                         "runtime", "scheduling", "service", "simulation",
                         "vod", "workloads")),
        ("perf", ()),
        ("planner", ("core", "devices")),
        ("root", ()),
        ("runtime", ("core", "devices", "perf", "planner", "scheduling",
                     "simulation", "vod", "workloads")),
        ("scheduling", ("core", "devices", "planner")),
        ("service", ("core", "devices", "planner", "runtime", "scheduling",
                     "simulation", "vod", "workloads")),
        ("simulation", ("core", "devices", "scheduling")),
        ("vod", ("core", "planner")),
        ("workloads", ("core",)),
    ),
    # Sorted by file spec, matching the parsed pyproject table.
    exceptions=(
        # core's own facade re-exports the solvers that moved to the
        # planning layer in PR 2.
        ("core/__init__.py", ("planner",)),
        # Pure re-export shims over the planning layer (shim-freshness
        # certifies they stay that way).
        ("core/capacity.py", ("planner",)),
        ("core/hybrid.py", ("planner",)),
        # Legacy analytical seams: region maps and sensitivity sweeps
        # predate the planning layer and call the memoized planner
        # directly.
        ("core/regions.py", ("planner",)),
        ("core/sensitivity.py", ("planner",)),
        # The benchmark harness times workloads from every layer.
        ("perf/bench.py", (ANY_LAYER,)),
        # The package facade re-exports the public API of every layer.
        ("repro/__init__.py", (ANY_LAYER,)),
        # Legacy scenario factories are thin shims over the service
        # catalogue (PR 7); the dependency is one lazy import.
        ("runtime/scenarios.py", ("service",)),
    ),
)

DEFAULT_CONTRACTS = ContractSpec()

DEFAULT_ENTRY_POINTS: tuple[tuple[str, str], ...] = (
    ("repro.experiments.cli", "main"),
)


@dataclass(frozen=True)
class LintConfig:
    """Everything the analysis engine knows about the project shape."""

    #: Absolute project root (the ``pyproject.toml`` directory), or
    #: None when running on defaults outside any project.
    root: str | None = None
    #: Import root, relative to ``root`` (``package-dir`` convention).
    src_root: str = "src"
    scopes: tuple[tuple[str, ScopeSpec], ...] = DEFAULT_SCOPES
    shims: tuple[tuple[str, str], ...] = DEFAULT_SHIMS
    layers: LayerSpec = field(default_factory=lambda: DEFAULT_LAYERS)
    contracts: ContractSpec = field(default_factory=lambda: DEFAULT_CONTRACTS)
    #: ``[project.scripts]`` targets: roots the dead-export rule keeps.
    entry_points: tuple[tuple[str, str], ...] = DEFAULT_ENTRY_POINTS
    #: Ratchet baseline path (relative to ``root``), or None.
    baseline: str | None = None

    def scope(self, rule: str) -> ScopeSpec | None:
        for name, spec in self.scopes:
            if name == rule:
                return spec
        return None

    def shim_map(self) -> dict[str, str]:
        return dict(self.shims)

    def src_path(self) -> Path | None:
        if self.root is None:
            return None
        return Path(self.root) / self.src_root

    def fingerprint(self) -> str:
        """Content hash keying the incremental cache (config changes
        invalidate every cached result)."""
        payload = json.dumps(_as_jsonable(self), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _as_jsonable(value: object) -> object:
    if hasattr(value, "__dataclass_fields__"):
        return {name: _as_jsonable(getattr(value, name))
                for name in value.__dataclass_fields__}  # type: ignore[union-attr]
    if isinstance(value, (list, tuple)):
        return [_as_jsonable(item) for item in value]
    return value


# -- pyproject parsing -------------------------------------------------------


def _load_toml(path: Path) -> dict:
    try:
        import tomllib
    except ImportError:  # Python 3.10: parse the subset we emit
        return _parse_toml_subset(path.read_text(encoding="utf-8"))
    with path.open("rb") as handle:
        return tomllib.load(handle)


def _strip_comment(line: str) -> str:
    out = []
    in_string: str | None = None
    for ch in line:
        if in_string:
            if ch == in_string:
                in_string = None
        elif ch in ("'", '"'):
            in_string = ch
        elif ch == "#":
            break
        out.append(ch)
    return "".join(out)


def _parse_value(text: str) -> object:
    text = text.strip()
    if text.startswith("["):
        inner = text[1:-1]
        items: list[object] = []
        depth = 0
        current = ""
        in_string: str | None = None
        for ch in inner:
            if in_string:
                current += ch
                if ch == in_string:
                    in_string = None
            elif ch in ("'", '"'):
                in_string = ch
                current += ch
            elif ch in "[{":
                depth += 1
                current += ch
            elif ch in "]}":
                depth -= 1
                current += ch
            elif ch == "," and depth == 0:
                if current.strip():
                    items.append(_parse_value(current))
                current = ""
            else:
                current += ch
        if current.strip():
            items.append(_parse_value(current))
        return items
    if (text.startswith('"') and text.endswith('"')) or \
            (text.startswith("'") and text.endswith("'")):
        return text[1:-1]
    if text in ("true", "false"):
        return text == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text  # inline tables etc.: callers ignore what they don't need


def _split_key(key: str) -> list[str]:
    parts: list[str] = []
    current = ""
    in_string: str | None = None
    for ch in key:
        if in_string:
            if ch == in_string:
                in_string = None
            else:
                current += ch
        elif ch in ("'", '"'):
            in_string = ch
        elif ch == ".":
            parts.append(current.strip())
            current = ""
        else:
            current += ch
    parts.append(current.strip())
    return [p for p in parts if p]


def _parse_toml_subset(text: str) -> dict:
    """A fallback parser for the TOML subset this project writes.

    Handles tables, dotted/quoted keys, strings, ints/floats/bools and
    (possibly multiline) arrays — enough to read ``pyproject.toml`` on
    Python 3.10, where :mod:`tomllib` is unavailable.  Unrecognised
    value forms (inline tables) parse to their raw text; the config
    loader never reads those keys.
    """
    root: dict = {}
    table = root
    pending_key: list[str] | None = None
    pending_value = ""

    def ensure(parts: list[str]) -> dict:
        node = root
        for part in parts:
            node = node.setdefault(part, {})
        return node

    def balanced(value: str) -> bool:
        depth = 0
        in_string: str | None = None
        for ch in value:
            if in_string:
                if ch == in_string:
                    in_string = None
            elif ch in ("'", '"'):
                in_string = ch
            elif ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
        return depth <= 0

    for raw in text.splitlines():
        line = _strip_comment(raw).strip()
        if pending_key is not None:
            pending_value += " " + line
            if balanced(pending_value):
                node = table
                for part in pending_key[:-1]:
                    node = node.setdefault(part, {})
                node[pending_key[-1]] = _parse_value(pending_value)
                pending_key = None
                pending_value = ""
            continue
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            name = line.strip("[]")
            if name.startswith("["):  # array of tables: unsupported
                continue
            table = ensure(_split_key(name))
            continue
        if "=" not in line:
            continue
        key, _, value = line.partition("=")
        parts = _split_key(key)
        if not balanced(value):
            pending_key = parts
            pending_value = value
            continue
        node = table
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        node[parts[-1]] = _parse_value(value.strip())
    return root


# -- Config assembly ---------------------------------------------------------


def _str_tuple(value: object, *, what: str) -> tuple[str, ...]:
    if not isinstance(value, list) or \
            not all(isinstance(item, str) for item in value):
        raise ConfigurationError(
            f"{what} must be an array of strings, got {value!r}")
    return tuple(value)


def _parse_scopes(section: dict) -> tuple[tuple[str, ScopeSpec], ...]:
    scopes = []
    for rule, body in sorted(section.items()):
        if not isinstance(body, dict):
            raise ConfigurationError(
                f"scopes.{rule} must be a table, got {body!r}")
        known = {"dirs", "files", "exclude-files"}
        unknown = set(body) - known
        if unknown:
            raise ConfigurationError(
                f"unknown scope keys for {rule!r}: {sorted(unknown)} "
                f"(known: {sorted(known)})")
        scopes.append((rule, ScopeSpec(
            dirs=_str_tuple(body.get("dirs", []),
                            what=f"scopes.{rule}.dirs"),
            files=_str_tuple(body.get("files", []),
                             what=f"scopes.{rule}.files"),
            exclude_files=_str_tuple(body.get("exclude-files", []),
                                     what=f"scopes.{rule}.exclude-files"))))
    return tuple(scopes)


def _parse_layers(section: dict) -> LayerSpec:
    allow_raw = section.get("allow", {})
    exceptions_raw = section.get("exceptions", {})
    if not isinstance(allow_raw, dict) or not isinstance(exceptions_raw, dict):
        raise ConfigurationError(
            "layers.allow and layers.exceptions must be tables")
    allow = tuple(sorted(
        (layer, tuple(_str_tuple(targets, what=f"layers.allow.{layer}")))
        for layer, targets in allow_raw.items()))
    exceptions = tuple(sorted(
        (spec, tuple(_str_tuple(targets,
                                what=f"layers.exceptions.{spec!r}")))
        for spec, targets in exceptions_raw.items()))
    spec = LayerSpec(allow=allow, exceptions=exceptions)
    spec.require_acyclic()
    return spec


def _parse_contracts(section: dict) -> ContractSpec:
    spec = ContractSpec()
    if "events-module" in section:
        spec = replace(spec, events_module=str(section["events-module"]))
    if "events-base" in section:
        spec = replace(spec, events_base=str(section["events-base"]))
    if "metric-modules" in section:
        spec = replace(spec, metric_modules=_str_tuple(
            section["metric-modules"], what="contracts.metric-modules"))
    if "metric-sinks" in section:
        spec = replace(spec, metric_sinks=_str_tuple(
            section["metric-sinks"], what="contracts.metric-sinks"))
    if "docs" in section:
        spec = replace(spec, docs=_str_tuple(section["docs"],
                                             what="contracts.docs"))
    return spec


def load_config(root: Path) -> LintConfig:
    """Build a :class:`LintConfig` from ``root``'s ``pyproject.toml``.

    Missing sections fall back to the :data:`DEFAULT` values, so a
    minimal project file still gets the full rule set; a present-but-
    malformed section raises :class:`ConfigurationError`.
    """
    pyproject = Path(root) / "pyproject.toml"
    data = _load_toml(pyproject) if pyproject.is_file() else {}
    lint = data.get("tool", {}).get("mems-repro", {}).get("lint", {})
    if not isinstance(lint, dict):
        raise ConfigurationError(
            f"[tool.mems-repro.lint] must be a table, got {lint!r}")
    scripts = data.get("project", {}).get("scripts", {})
    entry_points = DEFAULT_ENTRY_POINTS
    if isinstance(scripts, dict) and scripts:
        points = []
        for target in scripts.values():
            if isinstance(target, str) and ":" in target:
                module, _, symbol = target.partition(":")
                points.append((module.strip(), symbol.strip()))
        if points:
            entry_points = tuple(sorted(points))
    config = LintConfig(
        root=str(Path(root).resolve()),
        src_root=str(lint.get("src-root", "src")),
        entry_points=entry_points,
        baseline=(str(lint["baseline"]) if "baseline" in lint else None))
    if "scopes" in lint:
        config = replace(config, scopes=_parse_scopes(lint["scopes"]))
    if "shims" in lint:
        shims = lint["shims"]
        if not isinstance(shims, dict):
            raise ConfigurationError("shims must be a table of "
                                     "module -> replacement strings")
        config = replace(config, shims=tuple(sorted(
            (str(k), str(v)) for k, v in shims.items())))
    if "layers" in lint:
        config = replace(config, layers=_parse_layers(lint["layers"]))
    if "contracts" in lint:
        config = replace(config, contracts=_parse_contracts(
            lint["contracts"]))
    return config


def find_project(paths: list[Path]) -> LintConfig:
    """Discover the project configuration governing ``paths``.

    Walks up from the first path to the nearest ``pyproject.toml``;
    when none exists the default (repository-shaped) configuration is
    returned with no root, which disables the whole-program rules.
    """
    for path in paths:
        candidate = path.resolve()
        if candidate.is_file():
            candidate = candidate.parent
        for ancestor in (candidate, *candidate.parents):
            if (ancestor / "pyproject.toml").is_file():
                return load_config(ancestor)
    return LintConfig()
