"""Observability for the online server runtime.

The runtime accounts its behaviour in fixed-length reporting intervals:
monotonically increasing *counters* (arrivals, admits, rejects, drops,
migrations) are deltaed per interval, instantaneous *gauges* (active
sessions, DRAM occupancy, device utilisation, blocking probability vs.
the Erlang-B prediction) are sampled at the interval edge.  Snapshots
serialise losslessly to JSON (schema below) and render as a fixed-width
text dashboard for the CLI.

JSON schema (``MetricsLog.to_json``)::

    {
      "schema": 1,
      "snapshots": [
        {"index": 0, "t_start": 0.0, "t_end": 60.0,
         "counters": {"arrivals": 12, ...},
         "gauges": {"active_sessions": 9.0, ...}},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Serialisation format version.
SCHEMA_VERSION = 1

#: Counter names every snapshot carries (missing ones default to 0).
COUNTER_NAMES: tuple[str, ...] = (
    "arrivals", "admits", "rejects", "departures", "drops",
    "migrations_in", "migrations_out", "replans", "failures",
    "batched_joins", "streams_opened", "streams_closed",
)


@dataclass(frozen=True, slots=True)
class IntervalSnapshot:
    """Counters and gauges for one reporting interval."""

    index: int
    t_start: float
    t_end: float
    counters: dict[str, int]
    gauges: dict[str, float]

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "IntervalSnapshot":
        return cls(index=int(payload["index"]),
                   t_start=float(payload["t_start"]),
                   t_end=float(payload["t_end"]),
                   counters={str(k): int(v)
                             for k, v in payload["counters"].items()},
                   gauges={str(k): float(v)
                           for k, v in payload["gauges"].items()})


@dataclass
class MetricsLog:
    """Accumulates counters between snapshots and the snapshot series.

    The well-known counters live in one persistent dict seeded with
    every :data:`COUNTER_NAMES` entry, and ``count`` tracks which names
    actually moved, so sealing an interval is a flat copy plus an
    O(changed-counters) reset — no per-close rebuild scanning every
    known name.  Ad-hoc counter names still work; they ride in a side
    dict that only exists in intervals that used them (exactly the
    legacy serialisation).
    """

    snapshots: list[IntervalSnapshot] = field(default_factory=list)
    _interval_start: float = 0.0
    _counters: dict[str, int] = field(
        default_factory=lambda: dict.fromkeys(COUNTER_NAMES, 0))
    _dirty: set[str] = field(default_factory=set)
    _extra: dict[str, int] = field(default_factory=dict)

    def count(self, name: str, increment: int = 1) -> None:
        """Bump a counter within the current interval."""
        if increment < 0:
            raise ConfigurationError(
                f"increment must be >= 0, got {increment!r}")
        if name in self._counters:
            self._counters[name] += increment
            self._dirty.add(name)
        else:
            self._extra[name] = self._extra.get(name, 0) + increment

    def close_interval(self, t_end: float,
                       gauges: dict[str, float]) -> IntervalSnapshot:
        """Seal the current interval with sampled gauges; start the next."""
        counters = dict(self._counters)
        if self._extra:
            counters.update(self._extra)
            self._extra = {}
        snapshot = IntervalSnapshot(index=len(self.snapshots),
                                    t_start=self._interval_start,
                                    t_end=t_end, counters=counters,
                                    gauges=dict(gauges))
        self.snapshots.append(snapshot)
        for name in self._dirty:
            self._counters[name] = 0
        self._dirty.clear()
        self._interval_start = t_end
        return snapshot

    def totals(self) -> dict[str, int]:
        """Counter sums across all sealed intervals."""
        totals: dict[str, int] = {}
        for snapshot in self.snapshots:
            for name, value in snapshot.counters.items():
                totals[name] = totals.get(name, 0) + value
        return totals

    # -- Serialisation -------------------------------------------------------

    def to_json(self, *, indent: int | None = None) -> str:
        payload = {"schema": SCHEMA_VERSION,
                   "snapshots": [s.to_dict() for s in self.snapshots]}
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MetricsLog":
        payload = json.loads(text)
        if payload.get("schema") != SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported metrics schema {payload.get('schema')!r}; "
                f"expected {SCHEMA_VERSION}")
        return cls(snapshots=[IntervalSnapshot.from_dict(s)
                              for s in payload["snapshots"]])


def render_dashboard(log: MetricsLog, *, max_rows: int = 24) -> str:
    """Fixed-width text dashboard over the snapshot series.

    One row per interval (evenly subsampled past ``max_rows``) plus a
    totals footer; columns cover the session funnel and the gauges an
    operator watches first.
    """
    if not log.snapshots:
        return "(no metrics intervals recorded)"
    header = (f"{'t_end':>8} | {'arr':>5} {'adm':>5} {'rej':>5} "
              f"{'dep':>5} {'drp':>4} | {'act':>5} {'block':>6} "
              f"{'erlB':>6} | {'hit':>5} {'util':>5} {'dram':>5} "
              f"{'k':>2} {'mode':>6}")
    lines = [header, "-" * len(header)]
    snapshots = log.snapshots
    if len(snapshots) > max_rows:
        step = len(snapshots) / max_rows
        snapshots = [snapshots[int(i * step)] for i in range(max_rows)]
        if snapshots[-1] is not log.snapshots[-1]:
            snapshots.append(log.snapshots[-1])
    for s in snapshots:
        c = s.counters
        g = s.gauges
        lines.append(
            f"{s.t_end:>8.0f} | {c.get('arrivals', 0):>5} "
            f"{c.get('admits', 0):>5} {c.get('rejects', 0):>5} "
            f"{c.get('departures', 0):>5} {c.get('drops', 0):>4} | "
            f"{g.get('active_sessions', 0):>5.0f} "
            f"{g.get('blocking_probability', 0):>6.3f} "
            f"{g.get('erlang_b_prediction', 0):>6.3f} | "
            f"{g.get('cache_hit_ratio', 0):>5.2f} "
            f"{g.get('device_utilization', 0):>5.2f} "
            f"{g.get('dram_occupancy', 0):>5.2f} "
            f"{g.get('k_active', 0):>2.0f} "
            f"{'DEGRAD' if g.get('degraded', 0) else 'ok':>6}")
    totals = log.totals()
    last = log.snapshots[-1].gauges
    lines.append("-" * len(header))
    lines.append(
        f"totals: {totals.get('arrivals', 0)} arrivals, "
        f"{totals.get('admits', 0)} admits, "
        f"{totals.get('rejects', 0)} rejects, "
        f"{totals.get('departures', 0)} departures, "
        f"{totals.get('drops', 0)} drops, "
        f"{totals.get('migrations_in', 0)}/{totals.get('migrations_out', 0)} "
        f"migrations in/out, {totals.get('failures', 0)} failures")
    lines.append(
        f"final:  blocking {last.get('blocking_probability', 0.0):.4f} "
        f"(Erlang-B {last.get('erlang_b_prediction', 0.0):.4f}), "
        f"degraded time {last.get('degraded_time', 0.0):.0f}s")
    if "fanout_ratio" in last:
        lines.append(
            f"vod:    fanout {last['fanout_ratio']:.2f} sessions/stream "
            f"(cumulative {last.get('fanout_cumulative', 0.0):.2f}), "
            f"prefix hit {last.get('prefix_hit_rate', 0.0):.3f}, "
            f"{last.get('prefix_resident_titles', 0.0):.0f} resident, "
            f"tail-disk load {last.get('tail_disk_load', 0.0):.2f}")
    if "planner_cache_hits" in last:
        lines.append(
            f"planner: {last['planner_cache_hits']:.0f} cache hits / "
            f"{last.get('planner_cache_misses', 0.0):.0f} misses "
            f"({100.0 * last.get('planner_cache_hit_ratio', 0.0):.0f}% "
            "hit rate), "
            f"{last.get('planner_probe_cold', 0.0):.0f} cold / "
            f"{last.get('planner_probe_warm', 0.0):.0f} warm probes")
    return "\n".join(lines)
