"""Session lifecycle primitives for the online runtime.

A *session* is one viewer playing one title: it arrives by a Poisson
process, holds a server slot for an exponentially distributed viewing
time, and departs (or is rejected at admission, or dropped when a
failure shrinks the server).  The workload model follows the loss
system of :mod:`repro.workloads.arrivals`, extended with the two
time-varying effects the static model cannot express:

* **popularity drift** — the title ranking rotates, so yesterday's hot
  titles cool and the adaptive placement must chase the new head;
* **rate surges** — the arrival rate scales by a factor mid-run (flash
  crowds);
* **title focus** — a share of all arrivals collapses onto one title
  (the flash crowd's *object* of attention), the regime where the VoD
  prefix mode's multicast batching pays off.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.popularity import PopularityDistribution
from repro.errors import ConfigurationError
from repro.workloads.popularity_gen import RequestSampler


class SessionEventKind(enum.Enum):
    """What happened to a session at a point in time."""

    ADMIT = "admit"
    REJECT = "reject"
    DEPART = "depart"
    #: Shed mid-play because a failure shrank the feasible population.
    DROP = "drop"


@dataclass(frozen=True, slots=True)
class SessionEvent:
    """One entry of the runtime's session audit log."""

    time: float
    kind: SessionEventKind
    session_id: int
    title: int
    #: "cache" or "disk" at admission time ("prefix"/"shared" under the
    #: VoD prefix mode); None for rejects.
    served_by: str | None = None
    #: Rejection/drop reason (None for admits and normal departures).
    reason: str | None = None

    def to_dict(self) -> dict:
        return {"time": self.time, "kind": self.kind.value,
                "session_id": self.session_id, "title": self.title,
                "served_by": self.served_by, "reason": self.reason}


@dataclass(slots=True)
class Session:
    """An admitted session's mutable state."""

    session_id: int
    title: int
    arrival_time: float
    holding_time: float
    served_by: str
    #: Shared IO stream carrying this session under the VoD prefix
    #: mode; None outside it (and after a failure dissolves the batch).
    stream_id: int | None = None

    @property
    def departure_time(self) -> float:
        return self.arrival_time + self.holding_time


@dataclass
class SessionWorkload:
    """Stochastic session generator with drift and surge support.

    All randomness flows through one ``numpy`` generator seeded by the
    runtime, so a fixed seed reproduces the exact arrival/holding/title
    sequence.
    """

    arrival_rate: float
    mean_holding: float
    n_titles: int
    popularity: PopularityDistribution
    _rate_factor: float = field(default=1.0, init=False)
    _rotation: int = field(default=0, init=False)
    _base_weights: np.ndarray = field(default=None, init=False, repr=False)
    _focus_title: int | None = field(default=None, init=False)
    _focus_weight: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ConfigurationError(
                f"arrival_rate must be > 0, got {self.arrival_rate!r}")
        if self.mean_holding <= 0:
            raise ConfigurationError(
                f"mean_holding must be > 0, got {self.mean_holding!r}")
        if self.n_titles < 1:
            raise ConfigurationError(
                f"n_titles must be >= 1, got {self.n_titles!r}")
        sampler = RequestSampler(self.popularity, self.n_titles)
        self._base_weights = sampler.title_weights

    # -- Time-varying knobs --------------------------------------------------

    @property
    def offered_load(self) -> float:
        """Current offered load in Erlangs."""
        return self.arrival_rate * self._rate_factor * self.mean_holding

    @property
    def rate_factor(self) -> float:
        return self._rate_factor

    def scale_rate(self, factor: float) -> None:
        """Apply a flash-crowd multiplier to the arrival rate."""
        if factor <= 0:
            raise ConfigurationError(
                f"rate factor must be > 0, got {factor!r}")
        self._rate_factor = factor

    def rotate_popularity(self, shift: int) -> None:
        """Drift: rotate the title ranking by ``shift`` positions.

        The weight *vector* stays fixed (the aggregate skew is
        unchanged) but which titles carry the head moves, so a cached
        set chosen for the old ranking goes stale.
        """
        self._rotation = (self._rotation + shift) % self.n_titles

    def focus_title(self, title: int, weight: float) -> None:
        """Collapse ``weight`` of all arrivals onto one title.

        A focused flash crowd: each arrival picks ``title`` with
        probability ``weight`` and otherwise falls through to the usual
        rotated ranking.  ``weight=0`` clears the focus (and restores
        the unfocused sampling path exactly, so downstream draws are
        bit-identical to a run that never focused).
        """
        if not 0 <= title < self.n_titles:
            raise ConfigurationError(
                f"title must be in [0, {self.n_titles}), got {title!r}")
        if not 0.0 <= weight <= 1.0:
            raise ConfigurationError(
                f"focus weight must be in [0, 1], got {weight!r}")
        if weight <= 0.0:
            self._focus_title = None
            self._focus_weight = 0.0
        else:
            self._focus_title = title
            self._focus_weight = weight

    def title_weight(self, title: int) -> float:
        """Current access probability of one title."""
        if not 0 <= title < self.n_titles:
            raise ConfigurationError(
                f"title must be in [0, {self.n_titles}), got {title!r}")
        return float(self._effective_weights()[title])

    def current_weights(self) -> np.ndarray:
        """Per-title access probabilities under rotation and focus."""
        return self._effective_weights()

    def _effective_weights(self) -> np.ndarray:
        rotated = np.roll(self._base_weights, self._rotation)
        if self._focus_title is None:
            return rotated
        mixed = (1.0 - self._focus_weight) * rotated
        mixed[self._focus_title] += self._focus_weight
        return mixed

    # -- Sampling ------------------------------------------------------------

    def next_interarrival(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(
            1.0 / (self.arrival_rate * self._rate_factor)))

    def next_holding(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean_holding))

    def next_title(self, rng: np.random.Generator) -> int:
        if self._focus_title is not None:
            # One draw per arrival either way, so entering/leaving a
            # focus window consumes the same RNG stream length.
            return int(rng.choice(self.n_titles,
                                  p=self._effective_weights()))
        rank = int(rng.choice(self.n_titles, p=self._base_weights))
        return (rank + self._rotation) % self.n_titles


class SessionSampler:
    """Chunked, purpose-split sampler over a :class:`SessionWorkload`.

    The per-event path (``rng.exponential`` per arrival, ``rng.choice``
    per title) costs a few microseconds of generator dispatch per draw
    and — worse — interleaves every purpose on one bitstream, which
    makes vectorisation impossible: a blocked draw of 1000
    interarrivals would consume the words the titles and holding times
    of those same arrivals needed.

    The sampler therefore spawns three *independent* child generators
    from the run seed (``np.random.SeedSequence(seed).spawn(3)``), one
    per purpose, and refills a numpy chunk per stream.  Scalar
    consumption (the object path) and blocked consumption (the
    :class:`SessionTable` path) then read the *same* value sequences —
    the property the table/object parity harness rests on:

    * interarrivals are buffered as *standard* exponentials and scaled
      by the current rate at consumption time, so a mid-run surge never
      invalidates the buffer and matches the legacy draw-at-previous-
      arrival semantics;
    * titles are buffered as raw uniforms and mapped through the
      workload's current CDF at consumption time, so drift and focus
      never invalidate the buffer either (the CDF is re-derived only
      when rotation/focus actually change);
    * holding times are consumed only for *admitted* sessions, exactly
      like the object path, so rejects leave the stream untouched.
    """

    def __init__(self, workload: SessionWorkload, seed: int, *,
                 chunk: int = 1024) -> None:  # repro-lint: disable=unit-literals (a draw count, not bytes)
        if chunk < 1:
            raise ConfigurationError(f"chunk must be >= 1, got {chunk!r}")
        self.workload = workload
        self._chunk = int(chunk)
        ia_seq, title_seq, hold_seq = np.random.SeedSequence(seed).spawn(3)
        self._ia_rng = np.random.default_rng(ia_seq)
        self._title_rng = np.random.default_rng(title_seq)
        self._hold_rng = np.random.default_rng(hold_seq)
        self._ia_buf = np.empty(0)
        self._ia_cur = 0
        self._title_buf = np.empty(0)
        self._title_cur = 0
        self._hold_buf = np.empty(0)
        self._hold_cur = 0
        self._cdf: np.ndarray | None = None
        self._cdf_key: tuple | None = None

    # -- Buffers -------------------------------------------------------------

    def _ensure_ia(self, n: int) -> None:
        if len(self._ia_buf) - self._ia_cur < n:
            tail = self._ia_buf[self._ia_cur:]
            fresh = self._ia_rng.standard_exponential(
                max(self._chunk, n - len(tail)))
            self._ia_buf = np.concatenate((tail, fresh))
            self._ia_cur = 0

    def _ensure_titles(self, n: int) -> None:
        if len(self._title_buf) - self._title_cur < n:
            tail = self._title_buf[self._title_cur:]
            fresh = self._title_rng.random(max(self._chunk, n - len(tail)))
            self._title_buf = np.concatenate((tail, fresh))
            self._title_cur = 0

    def _title_cdf(self) -> np.ndarray:
        w = self.workload
        key = (w._rotation, w._focus_title, w._focus_weight)
        if key != self._cdf_key:
            cdf = np.cumsum(w._effective_weights())
            cdf[-1] = 1.0  # guard float drift at the top of the CDF
            self._cdf = cdf
            self._cdf_key = key
        return self._cdf

    # -- Scalar draws (object path) ------------------------------------------

    def next_interarrival(self) -> float:
        w = self.workload
        self._ensure_ia(1)
        value = self._ia_buf[self._ia_cur]
        self._ia_cur += 1
        return float(value * (1.0 / (w.arrival_rate * w._rate_factor)))

    def next_title(self) -> int:
        self._ensure_titles(1)
        u = self._title_buf[self._title_cur]
        self._title_cur += 1
        cdf = self._title_cdf()
        return int(min(np.searchsorted(cdf, u, side="right"),
                       len(cdf) - 1))

    def next_holding(self) -> float:
        if len(self._hold_buf) - self._hold_cur < 1:
            self._hold_buf = self._hold_rng.standard_exponential(self._chunk)
            self._hold_cur = 0
        value = self._hold_buf[self._hold_cur]
        self._hold_cur += 1
        return float(value * self.workload.mean_holding)

    # -- Blocked draws (SessionTable path) -----------------------------------

    def arrival_times(self, start: float, until: float, *,
                      inclusive: bool = False) -> np.ndarray:
        """Absolute arrival times in ``(start, until)`` at the current rate.

        Accumulates sequentially (``cumsum``) from ``start`` so the
        float trajectory is bit-identical to the object path's
        one-``sim.after``-per-arrival chain.  Exactly the returned
        number of interarrival draws is consumed; the first draw beyond
        the window stays buffered for the next window, and because the
        buffer holds *standard* exponentials a rate change between
        windows re-scales it correctly.
        """
        w = self.workload
        scale = 1.0 / (w.arrival_rate * w._rate_factor)
        side = "right" if inclusive else "left"
        times: list[np.ndarray] = []
        while True:
            self._ensure_ia(self._chunk)
            block = self._ia_buf[self._ia_cur:self._ia_cur + self._chunk]
            # Seed the cumsum with ``start`` so every partial sum is the
            # exact float chain ((start + d1) + d2) + ... the per-event
            # path produces — adding start after the fact rounds
            # differently at the last ulp.
            t = np.cumsum(np.concatenate(((start,), block * scale)))[1:]
            cut = int(np.searchsorted(t, until, side=side))
            if cut < len(t):
                self._ia_cur += cut
                times.append(t[:cut])
                break
            self._ia_cur += len(t)
            times.append(t)
            start = float(t[-1])
        return np.concatenate(times) if len(times) > 1 else times[0]

    def title_block(self, n: int) -> np.ndarray:
        """Titles for the next ``n`` arrivals under the current CDF."""
        if n == 0:
            return np.empty(0, dtype=np.int64)
        self._ensure_titles(n)
        u = self._title_buf[self._title_cur:self._title_cur + n]
        self._title_cur += n
        cdf = self._title_cdf()
        return np.minimum(np.searchsorted(cdf, u, side="right"),
                          len(cdf) - 1)


#: ``SessionTable`` row states.
TABLE_ACTIVE = 1
TABLE_DEPARTED = 2
TABLE_DROPPED = 3


class SessionTable:
    """Struct-of-arrays store for session state (the fast core).

    One row per *admitted* session, indexed by session id (ids are
    dense and allocated in admit order, so the row index is the id).
    Columns are flat numpy arrays — arrival/departure time, title,
    bit rate, shared-stream id, serving tier and lifecycle state — so
    departure harvesting, shedding and re-tagging become masked scans
    instead of per-object attribute walks, and a million sessions cost
    ~50 MB instead of a million heap objects.
    """

    def __init__(self, *, capacity: int = 1024) -> None:  # repro-lint: disable=unit-literals (a row count, not bytes)
        if capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {capacity!r}")
        self._n = 0
        self._active = 0
        self._lo = 0  # every row below this watermark is inactive
        self.arrival = np.empty(capacity)
        self.departure = np.empty(capacity)
        self.title = np.empty(capacity, dtype=np.int64)
        self.bitrate = np.empty(capacity)
        self.stream = np.full(capacity, -1, dtype=np.int64)
        self.state = np.zeros(capacity, dtype=np.uint8)
        self.served = np.zeros(capacity, dtype=np.int16)
        self._served_names: list[str] = []
        self._served_codes: dict[str, int] = {}

    def __len__(self) -> int:
        return self._n

    @property
    def active_count(self) -> int:
        return self._active

    def serve_code(self, served_by: str) -> int:
        """Intern a serving-tier name ("disk", "cache", ...) as a code."""
        code = self._served_codes.get(served_by)
        if code is None:
            code = len(self._served_names)
            self._served_codes[served_by] = code
            self._served_names.append(served_by)
        return code

    def serve_name(self, code: int) -> str:
        return self._served_names[code]

    def _grow(self) -> None:
        capacity = 2 * len(self.arrival)
        for name in ("arrival", "departure", "title", "bitrate",
                     "stream", "state", "served"):
            old = getattr(self, name)
            new = np.empty(capacity, dtype=old.dtype)
            new[:self._n] = old[:self._n]
            if name == "stream":
                new[self._n:] = -1
            elif name == "state":
                new[self._n:] = 0
            setattr(self, name, new)

    def add(self, session_id: int, *, title: int, arrival: float,
            holding: float, served_by: str, bitrate: float = 0.0,
            stream_id: int | None = None) -> None:
        """Append an admitted session (ids must stay dense)."""
        if session_id != self._n:
            raise ConfigurationError(
                f"session ids must be dense: expected {self._n}, "
                f"got {session_id!r}")
        if self._n == len(self.arrival):
            self._grow()
        row = self._n
        self.arrival[row] = arrival
        self.departure[row] = arrival + holding
        self.title[row] = title
        self.bitrate[row] = bitrate
        self.stream[row] = -1 if stream_id is None else stream_id
        self.served[row] = self.serve_code(served_by)
        self.state[row] = TABLE_ACTIVE
        self._n += 1
        self._active += 1

    # -- Masked scans --------------------------------------------------------

    def _advance_lo(self) -> None:
        state = self.state
        lo, n = self._lo, self._n
        while lo < n and state[lo] != TABLE_ACTIVE:
            lo += 1
        self._lo = lo

    def active_rows(self) -> np.ndarray:
        """Row ids of live sessions, in admit order."""
        lo, n = self._lo, self._n
        return (lo + np.nonzero(
            self.state[lo:n] == TABLE_ACTIVE)[0]).astype(np.int64)

    def harvest(self, until: float, *, inclusive: bool = True) -> np.ndarray:
        """Rows departing by ``until``, ordered by (time, admit order).

        A pure scan — callers mark the rows departed (or dropped) as
        they process them.
        """
        lo, n = self._lo, self._n
        live = self.state[lo:n] == TABLE_ACTIVE
        if inclusive:
            due = live & (self.departure[lo:n] <= until)
        else:
            due = live & (self.departure[lo:n] < until)
        rows = lo + np.nonzero(due)[0]
        if len(rows) > 1:
            rows = rows[np.argsort(self.departure[rows], kind="stable")]
        return rows.astype(np.int64)

    def min_departure(self) -> float:
        """Earliest departure among live sessions (inf when empty)."""
        rows = self.active_rows()
        if len(rows) == 0:
            return float("inf")
        return float(self.departure[rows].min())

    def mark_departed(self, row: int) -> None:
        self.state[row] = TABLE_DEPARTED
        self._active -= 1
        if row == self._lo:
            self._advance_lo()

    def mark_dropped(self, row: int) -> None:
        self.state[row] = TABLE_DROPPED
        self._active -= 1
        if row == self._lo:
            self._advance_lo()

    def shed_newest(self, count: int) -> np.ndarray:
        """Newest ``count`` live rows (reverse admit order), for sheds."""
        rows = self.active_rows()
        return rows[::-1][:count]
