"""Session lifecycle primitives for the online runtime.

A *session* is one viewer playing one title: it arrives by a Poisson
process, holds a server slot for an exponentially distributed viewing
time, and departs (or is rejected at admission, or dropped when a
failure shrinks the server).  The workload model follows the loss
system of :mod:`repro.workloads.arrivals`, extended with the two
time-varying effects the static model cannot express:

* **popularity drift** — the title ranking rotates, so yesterday's hot
  titles cool and the adaptive placement must chase the new head;
* **rate surges** — the arrival rate scales by a factor mid-run (flash
  crowds);
* **title focus** — a share of all arrivals collapses onto one title
  (the flash crowd's *object* of attention), the regime where the VoD
  prefix mode's multicast batching pays off.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.popularity import PopularityDistribution
from repro.errors import ConfigurationError
from repro.workloads.popularity_gen import RequestSampler


class SessionEventKind(enum.Enum):
    """What happened to a session at a point in time."""

    ADMIT = "admit"
    REJECT = "reject"
    DEPART = "depart"
    #: Shed mid-play because a failure shrank the feasible population.
    DROP = "drop"


@dataclass(frozen=True, slots=True)
class SessionEvent:
    """One entry of the runtime's session audit log."""

    time: float
    kind: SessionEventKind
    session_id: int
    title: int
    #: "cache" or "disk" at admission time ("prefix"/"shared" under the
    #: VoD prefix mode); None for rejects.
    served_by: str | None = None
    #: Rejection/drop reason (None for admits and normal departures).
    reason: str | None = None

    def to_dict(self) -> dict:
        return {"time": self.time, "kind": self.kind.value,
                "session_id": self.session_id, "title": self.title,
                "served_by": self.served_by, "reason": self.reason}


@dataclass(slots=True)
class Session:
    """An admitted session's mutable state."""

    session_id: int
    title: int
    arrival_time: float
    holding_time: float
    served_by: str
    #: Shared IO stream carrying this session under the VoD prefix
    #: mode; None outside it (and after a failure dissolves the batch).
    stream_id: int | None = None

    @property
    def departure_time(self) -> float:
        return self.arrival_time + self.holding_time


@dataclass
class SessionWorkload:
    """Stochastic session generator with drift and surge support.

    All randomness flows through one ``numpy`` generator seeded by the
    runtime, so a fixed seed reproduces the exact arrival/holding/title
    sequence.
    """

    arrival_rate: float
    mean_holding: float
    n_titles: int
    popularity: PopularityDistribution
    _rate_factor: float = field(default=1.0, init=False)
    _rotation: int = field(default=0, init=False)
    _base_weights: np.ndarray = field(default=None, init=False, repr=False)
    _focus_title: int | None = field(default=None, init=False)
    _focus_weight: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ConfigurationError(
                f"arrival_rate must be > 0, got {self.arrival_rate!r}")
        if self.mean_holding <= 0:
            raise ConfigurationError(
                f"mean_holding must be > 0, got {self.mean_holding!r}")
        if self.n_titles < 1:
            raise ConfigurationError(
                f"n_titles must be >= 1, got {self.n_titles!r}")
        sampler = RequestSampler(self.popularity, self.n_titles)
        self._base_weights = sampler.title_weights

    # -- Time-varying knobs --------------------------------------------------

    @property
    def offered_load(self) -> float:
        """Current offered load in Erlangs."""
        return self.arrival_rate * self._rate_factor * self.mean_holding

    @property
    def rate_factor(self) -> float:
        return self._rate_factor

    def scale_rate(self, factor: float) -> None:
        """Apply a flash-crowd multiplier to the arrival rate."""
        if factor <= 0:
            raise ConfigurationError(
                f"rate factor must be > 0, got {factor!r}")
        self._rate_factor = factor

    def rotate_popularity(self, shift: int) -> None:
        """Drift: rotate the title ranking by ``shift`` positions.

        The weight *vector* stays fixed (the aggregate skew is
        unchanged) but which titles carry the head moves, so a cached
        set chosen for the old ranking goes stale.
        """
        self._rotation = (self._rotation + shift) % self.n_titles

    def focus_title(self, title: int, weight: float) -> None:
        """Collapse ``weight`` of all arrivals onto one title.

        A focused flash crowd: each arrival picks ``title`` with
        probability ``weight`` and otherwise falls through to the usual
        rotated ranking.  ``weight=0`` clears the focus (and restores
        the unfocused sampling path exactly, so downstream draws are
        bit-identical to a run that never focused).
        """
        if not 0 <= title < self.n_titles:
            raise ConfigurationError(
                f"title must be in [0, {self.n_titles}), got {title!r}")
        if not 0.0 <= weight <= 1.0:
            raise ConfigurationError(
                f"focus weight must be in [0, 1], got {weight!r}")
        if weight <= 0.0:
            self._focus_title = None
            self._focus_weight = 0.0
        else:
            self._focus_title = title
            self._focus_weight = weight

    def title_weight(self, title: int) -> float:
        """Current access probability of one title."""
        if not 0 <= title < self.n_titles:
            raise ConfigurationError(
                f"title must be in [0, {self.n_titles}), got {title!r}")
        return float(self._effective_weights()[title])

    def current_weights(self) -> np.ndarray:
        """Per-title access probabilities under rotation and focus."""
        return self._effective_weights()

    def _effective_weights(self) -> np.ndarray:
        rotated = np.roll(self._base_weights, self._rotation)
        if self._focus_title is None:
            return rotated
        mixed = (1.0 - self._focus_weight) * rotated
        mixed[self._focus_title] += self._focus_weight
        return mixed

    # -- Sampling ------------------------------------------------------------

    def next_interarrival(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(
            1.0 / (self.arrival_rate * self._rate_factor)))

    def next_holding(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean_holding))

    def next_title(self, rng: np.random.Generator) -> int:
        if self._focus_title is not None:
            # One draw per arrival either way, so entering/leaving a
            # focus window consumes the same RNG stream length.
            return int(rng.choice(self.n_titles,
                                  p=self._effective_weights()))
        rank = int(rng.choice(self.n_titles, p=self._base_weights))
        return (rank + self._rotation) % self.n_titles
