"""The session-core parity harness: SessionTable vs object path.

The fast-path safety net, same shape as :mod:`repro.service.parity`.
For every named scenario it runs the identical configuration twice —
once on the per-object session core (one ``Session`` per viewer, one
calendar event per arrival/departure) and once on the struct-of-arrays
:class:`~repro.runtime.sessions.SessionTable` core (vectorized arrival
windows, masked departure harvests) — and demands the two
:class:`~repro.runtime.runtime.RuntimeResult` JSON payloads be
*byte-identical*: every admission, rejection, drop, migration, counter
and gauge sample.

The single sanctioned difference is ``events_executed``: collapsing a
million per-session calendar events into a handful of drained windows
is the whole point of the table core, so the raw engine event count is
excluded from the comparison (and reported separately).
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, replace

from repro.runtime.runtime import RuntimeConfig, RuntimeResult, run_runtime
from repro.runtime.scenarios import SCENARIOS, build_scenario

__all__ = [
    "CoreParityReport",
    "compare_config",
    "compare_scenario",
    "run_both_cores",
    "verify_all_cores",
]


@dataclass(frozen=True)
class CoreParityReport:
    """The verdict for one configuration."""

    name: str
    matches: bool
    objects_json: str
    table_json: str
    objects_events_executed: int
    table_events_executed: int

    def first_divergence(self, context: int = 60) -> str | None:
        """A short excerpt around the first differing byte (or None)."""
        if self.matches:
            return None
        a, b = self.objects_json, self.table_json
        n = min(len(a), len(b))
        at = next((i for i in range(n) if a[i] != b[i]), n)
        lo = max(0, at - context)
        return (f"at byte {at}: objects ...{a[lo:at + context]!r} vs "
                f"table ...{b[lo:at + context]!r}")


def _comparable_json(result: RuntimeResult) -> str:
    """The result JSON minus the engine's raw event count.

    The table core executes a handful of control-timer events where the
    object core executes one per session arrival/departure; everything
    *observable* (metrics, session events, migrations, notes) must
    still match byte for byte.
    """
    payload = json.loads(result.to_json(indent=None))
    payload["summary"].pop("events_executed", None)
    return json.dumps(payload, sort_keys=True)


def run_both_cores(config: RuntimeConfig
                   ) -> tuple[RuntimeResult, RuntimeResult]:
    """One config, both session cores: (objects result, table result).

    Each leg runs on a deep copy of ``config``: a run *mutates* the
    workload (drift rotations, surge rate scaling, focus weights stay
    where the last control event left them), so sharing one instance
    would leak the first leg's final state into the second leg's title
    and interarrival mapping and report a phantom divergence.
    """
    objects = run_runtime(
        replace(copy.deepcopy(config), session_core="objects"))
    table = run_runtime(
        replace(copy.deepcopy(config), session_core="table"))
    return objects, table


def compare_config(name: str, config: RuntimeConfig) -> CoreParityReport:
    """Run both cores for ``config`` and compare the JSON bytes."""
    objects, table = run_both_cores(config)
    objects_json = _comparable_json(objects)
    table_json = _comparable_json(table)
    return CoreParityReport(
        name=name, matches=objects_json == table_json,
        objects_json=objects_json, table_json=table_json,
        objects_events_executed=objects.events_executed,
        table_events_executed=table.events_executed)


def compare_scenario(name: str, *, seed: int = 0,
                     horizon: float | None = None) -> CoreParityReport:
    """Core-parity verdict for one named scenario."""
    config = build_scenario(name, seed=seed, horizon=horizon)
    return compare_config(name, config)


def verify_all_cores(*, seed: int = 0,
                     horizon: float | None = None
                     ) -> dict[str, CoreParityReport]:
    """Core-parity verdicts for every named scenario."""
    return {name: compare_scenario(name, seed=seed, horizon=horizon)
            for name in SCENARIOS}
