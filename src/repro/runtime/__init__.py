"""Online server runtime: the analytical models as live controllers.

Composes the event engine, admission control, cache design, popularity
models, and failure recovery into a running streaming server with
session lifecycle, adaptive MEMS-cache placement, failure injection,
and interval metrics export.  See ``docs/RUNTIME.md``.
"""

from repro.runtime.failures import FailureEvent, FailureKind, RecoveryPlan, plan_recovery
from repro.runtime.metrics import IntervalSnapshot, MetricsLog, render_dashboard
from repro.runtime.placement import AdaptivePlacement, PlacementDecision
from repro.runtime.runtime import (
    DriftEvent,
    FocusEvent,
    MigrationRecord,
    RuntimeConfig,
    RuntimeResult,
    ServerRuntime,
    SurgeEvent,
    run_runtime,
)
from repro.runtime.scenarios import (
    SCENARIOS,
    build_scenario,
    run_scenario,
    run_scenario_batch,
)
from repro.runtime.sessions import (
    Session,
    SessionEvent,
    SessionEventKind,
    SessionWorkload,
)

__all__ = [
    "AdaptivePlacement",
    "DriftEvent",
    "FailureEvent",
    "FailureKind",
    "FocusEvent",
    "IntervalSnapshot",
    "MetricsLog",
    "MigrationRecord",
    "PlacementDecision",
    "RecoveryPlan",
    "RuntimeConfig",
    "RuntimeResult",
    "SCENARIOS",
    "ServerRuntime",
    "Session",
    "SessionEvent",
    "SessionEventKind",
    "SessionWorkload",
    "SurgeEvent",
    "build_scenario",
    "plan_recovery",
    "render_dashboard",
    "run_runtime",
    "run_scenario",
    "run_scenario_batch",
]
