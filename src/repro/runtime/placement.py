"""Adaptive MEMS-cache placement for the online runtime.

The paper's cache configuration picks the cached titles once, from an
assumed popularity distribution.  Online, popularity drifts; this
module closes the loop:

1. every admission is *observed* (per-title counters aged by an
   exponentially weighted moving average, so old traffic fades);
2. at each epoch the titles are re-ranked, the cached set becomes the
   top titles that fit the bank, and the differences are *migrations*
   (titles staged onto / evicted from the MEMS bank between cycles);
3. the cache design (Theorems 3/4) is re-solved against the observed
   :class:`~repro.core.popularity.EmpiricalPopularity` — through the
   unified planning layer, so an epoch whose traffic and population
   match a previous solve replays it from the planner's cache —
   choosing whichever policy (striped / replicated) needs less DRAM
   for the live population.

The chosen design then becomes the admission controller's demand model
for the next epoch (see :meth:`AdmissionController.reconfigure`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cache_model import (
    CacheDesign,
    CachePolicy,
    cache_capacity_fraction,
)
from repro.core.parameters import SystemParameters
from repro.core.popularity import EmpiricalPopularity
from repro.errors import ConfigurationError
from repro.planner.batch import demand_at
from repro.planner.configuration import Configuration
from repro.planner.solver import Planner, default_planner


@dataclass(frozen=True)
class PlacementDecision:
    """Outcome of one epoch's re-planning."""

    policy: CachePolicy
    #: Titles resident on the MEMS bank after the migration, sorted.
    cached_titles: tuple[int, ...]
    #: Titles staged onto the bank this epoch, sorted.
    migrations_in: tuple[int, ...]
    #: Titles evicted from the bank this epoch, sorted.
    migrations_out: tuple[int, ...]
    #: Popularity model fitted to the observed traffic.
    popularity: EmpiricalPopularity
    #: Cache design at the live population; None when no policy is
    #: schedulable at that population (the runtime must shed load).
    design: CacheDesign | None
    #: Admission capacity under the chosen model, pre-solved with the
    #: previous epoch's capacity as a warm-start hint; None when the
    #: caller passed no ``dram_budget`` to :meth:`replan`.
    capacity: int | None = None


class AdaptivePlacement:
    """Tracks observed popularity and re-plans the cached title set."""

    def __init__(self, n_titles: int, *, decay: float = 0.5,
                 prior_weights: np.ndarray | None = None,
                 prior_strength: float = 10.0,
                 planner: Planner | None = None) -> None:
        if n_titles < 1:
            raise ConfigurationError(
                f"n_titles must be >= 1, got {n_titles!r}")
        if not 0.0 <= decay < 1.0:
            raise ConfigurationError(
                f"decay must be in [0, 1), got {decay!r}")
        if prior_strength < 0:
            raise ConfigurationError(
                f"prior_strength must be >= 0, got {prior_strength!r}")
        self.n_titles = n_titles
        self.decay = decay
        # Aged score per title.  Seeding with the assumed distribution
        # lets a cold server start from the designed-for placement
        # instead of an arbitrary one.
        self._scores = np.zeros(n_titles)
        if prior_weights is not None:
            prior = np.asarray(prior_weights, dtype=float)
            if prior.shape != (n_titles,):
                raise ConfigurationError(
                    f"prior_weights must have shape ({n_titles},), "
                    f"got {prior.shape}")
            self._scores += prior_strength * prior
        self._epoch_counts = np.zeros(n_titles)
        self._cached: tuple[int, ...] = ()
        self._planner = planner if planner is not None else default_planner()
        # Last epoch's capacity, threaded into the next epoch's solve as
        # a warm-start hint.  Popularity drift gives every epoch a fresh
        # configuration (so the planner's per-axis state never matches);
        # this explicit hint is what keeps re-planning incremental.
        self._capacity_hint: int | None = None

    @property
    def planner(self) -> Planner:
        """The planner this placement solves its epoch designs through."""
        return self._planner

    @property
    def cached_titles(self) -> tuple[int, ...]:
        """Titles currently resident on the MEMS bank, sorted."""
        return self._cached

    def observe(self, title: int) -> None:
        """Record one admission for ``title`` in the current epoch."""
        if not 0 <= title < self.n_titles:
            raise ConfigurationError(
                f"title must be in [0, {self.n_titles}), got {title!r}")
        self._epoch_counts[title] += 1.0

    def observe_block(self, titles: np.ndarray) -> None:
        """Record one arrival per entry of ``titles``, in one operation.

        The vectorized twin of :meth:`observe` for the table core's
        bulk paths: per-title counts are order-insensitive within an
        epoch, so a whole window lands as one scatter-add.
        """
        titles = np.asarray(titles)
        if len(titles) and not (0 <= int(titles.min())
                                and int(titles.max()) < self.n_titles):
            raise ConfigurationError(
                f"titles must be in [0, {self.n_titles})")
        np.add.at(self._epoch_counts, titles, 1.0)

    def scores(self) -> np.ndarray:
        """Aged per-title scores including the in-flight epoch."""
        return self.decay * self._scores + self._epoch_counts

    def replan(self, params: SystemParameters, n_active: float, *,
               dram_budget: float | None = None) -> PlacementDecision:
        """Close the epoch: age scores, re-rank, migrate, re-solve.

        ``params.k`` / ``params.size_mems`` reflect the *surviving*
        bank, so the same path serves both drift adaptation and
        post-failure shrinkage.  ``n_active`` is the live population the
        design is evaluated at.  When ``dram_budget`` is given the
        admission capacity under the chosen model is pre-solved here —
        hinted by the previous epoch's capacity — so the admission
        controller's post-``reconfigure`` query replays it from the
        planner cache instead of searching cold.
        """
        if n_active < 0:
            raise ConfigurationError(
                f"n_active must be >= 0, got {n_active!r}")
        if params.size_mems is None or params.size_disk is None:
            raise ConfigurationError(
                "adaptive placement needs finite size_mems and size_disk")
        self._scores = self.scores()
        self._epoch_counts = np.zeros(self.n_titles)
        popularity = EmpiricalPopularity.from_counts(self._scores)

        best_policy: CachePolicy | None = None
        best_design: CacheDesign | None = None
        at_population = params.replace(n_streams=n_active)
        # Judge both candidate policies in one batch-demand evaluation
        # (bit-identical to the scalar solves; ``inf`` marks an
        # infeasible candidate).  Only the winner pays a scalar planner
        # solve — that is the plan whose design the decision carries
        # and the admission controller replays from the planner cache.
        candidates = (CachePolicy.REPLICATED, CachePolicy.STRIPED)
        demands = demand_at(
            [(at_population, Configuration.cache(policy, popularity))
             for policy in candidates], n_active)
        best_dram = float("inf")
        for policy, dram in zip(candidates, demands):
            if dram < best_dram:
                best_policy = policy
                best_dram = float(dram)
        if best_policy is not None:
            best_design = self._planner.plan(
                at_population,
                Configuration.cache(best_policy, popularity)).design
        else:
            # Neither policy is schedulable at this population; report
            # under the replicated geometry so the caller can shed load
            # and re-plan.
            best_policy = CachePolicy.REPLICATED

        fraction = cache_capacity_fraction(best_policy, params.k,
                                           params.size_mems,
                                           params.size_disk)
        n_cacheable = int(np.floor(fraction * self.n_titles + 1e-9))
        # Stable ranking: higher score first, lower title id on ties.
        ranked = sorted(range(self.n_titles),
                        key=lambda t: (-self._scores[t], t))
        new_cached = tuple(sorted(ranked[:n_cacheable]))
        old = set(self._cached)
        new = set(new_cached)
        capacity: int | None = None
        if dram_budget is not None:
            capacity = self._planner.capacity(
                params, Configuration.cache(best_policy, popularity),
                dram_budget, hint=self._capacity_hint)
            self._capacity_hint = capacity
        decision = PlacementDecision(
            policy=best_policy,
            cached_titles=new_cached,
            migrations_in=tuple(sorted(new - old)),
            migrations_out=tuple(sorted(old - new)),
            popularity=popularity,
            design=best_design,
            capacity=capacity)
        self._cached = new_cached
        return decision
