"""The online server runtime: analytical models as live controllers.

Everything the repository could previously evaluate only as a static
snapshot — admission feasibility (Theorems 1-4), cache placement
(Section 4.2), Erlang-B blocking — runs here as a closed loop on the
discrete-event engine:

* Poisson session arrivals with exponential holding times flow through
  an :class:`~repro.scheduling.admission.AdmissionController`;
* between epochs the :class:`~repro.runtime.placement.AdaptivePlacement`
  re-ranks titles by observed popularity and migrates the MEMS-cached
  set, re-solving the striped/replicated cache design each time;
* injected faults (:mod:`repro.runtime.failures`) shrink or throttle
  the bank mid-run and the runtime recomputes a feasible degraded
  configuration, shedding the newest sessions when it must;
* under the VoD ``"prefix"`` mode (:mod:`repro.vod`) the bank holds
  per-title *prefixes*, same-title arrivals inside a batching window
  share one IO stream through a
  :class:`~repro.vod.multicast.MulticastBatcher`, and admission
  control charges per *stream* rather than per session;
* every reporting interval the :class:`~repro.runtime.metrics.MetricsLog`
  seals a snapshot of the session funnel and operator gauges.

A fixed seed reproduces the run exactly: all randomness flows through
one generator and the event calendar is stable for simultaneous events.
"""

from __future__ import annotations

import heapq
import json
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.cache_model import CachePolicy
from repro.core.parameters import SystemParameters
from repro.devices.bank import BankPolicy, MemsBank
from repro.devices.mems import MemsDevice
from repro.errors import (
    AdmissionError,
    CapacityError,
    ConfigurationError,
    require,
)
from repro.planner.solver import Planner
from repro.runtime.failures import FailureEvent, FailureKind, plan_recovery
from repro.runtime.metrics import MetricsLog, render_dashboard
from repro.runtime.placement import AdaptivePlacement
from repro.units import MB
from repro.runtime.sessions import (
    Session,
    SessionEvent,
    SessionEventKind,
    SessionSampler,
    SessionTable,
    SessionWorkload,
    TABLE_ACTIVE,
)
from repro.scheduling.admission import AdmissionController
from repro.simulation.engine import Simulator
from repro.vod.multicast import MulticastBatcher
from repro.vod.placement import PrefixDecision, PrefixPlacement
from repro.workloads.arrivals import predicted_blocking

#: Shared empty blocks for table-core windows with no due work.
_EMPTY_TIMES: np.ndarray = np.empty(0)
_EMPTY_ROWS: np.ndarray = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class DriftEvent:
    """Popularity drift: rotate the title ranking at ``time``."""

    time: float
    shift: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"time must be >= 0, got {self.time!r}")


@dataclass(frozen=True)
class SurgeEvent:
    """Flash crowd: scale the arrival rate by ``factor`` at ``time``."""

    time: float
    factor: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"time must be >= 0, got {self.time!r}")
        if self.factor <= 0:
            raise ConfigurationError(
                f"factor must be > 0, got {self.factor!r}")


@dataclass(frozen=True)
class FocusEvent:
    """Focused flash crowd: ``weight`` of arrivals collapse onto
    ``title`` at ``time`` (``weight=0`` clears the focus)."""

    time: float
    title: int
    weight: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"time must be >= 0, got {self.time!r}")
        if self.title < 0:
            raise ConfigurationError(
                f"title must be >= 0, got {self.title!r}")
        if not 0.0 <= self.weight <= 1.0:
            raise ConfigurationError(
                f"weight must be in [0, 1], got {self.weight!r}")


@dataclass(frozen=True)
class MigrationRecord:
    """One epoch's placement change."""

    time: float
    policy: str
    migrations_in: tuple[int, ...]
    migrations_out: tuple[int, ...]
    n_cached: int

    def to_dict(self) -> dict:
        return {"time": self.time, "policy": self.policy,
                "migrations_in": list(self.migrations_in),
                "migrations_out": list(self.migrations_out),
                "n_cached": self.n_cached}


@dataclass
class RuntimeConfig:
    """Everything one runtime scenario needs."""

    params: SystemParameters
    dram_budget: float
    workload: SessionWorkload
    horizon: float
    epoch: float = 600.0
    metrics_interval: float = 60.0
    #: "cache" (adaptive placement), "buffer", "none" (direct disk), or
    #: "prefix" (VoD prefix cache with multicast batching).
    configuration: str = "cache"
    device: MemsDevice | None = None
    placement_decay: float = 0.5
    failures: tuple[FailureEvent, ...] = ()
    drifts: tuple[DriftEvent, ...] = ()
    surges: tuple[SurgeEvent, ...] = ()
    focuses: tuple[FocusEvent, ...] = ()
    #: Prefix-mode sizing knobs (ignored outside ``"prefix"``): startup
    #: safety factor, minimum prefix seconds, and the longest batching
    #: window a hot title's prefix may grow to.
    prefix_safety: float = 2.0
    prefix_floor: float = 1.0
    batch_window: float = 120.0
    seed: int = 0
    #: Session bookkeeping core: "objects" keeps one ``Session`` per
    #: viewer and one calendar event per arrival/departure (the
    #: equivalence oracle); "table" stores sessions as numpy columns in
    #: a :class:`~repro.runtime.sessions.SessionTable`, draws arrivals
    #: in vectorized chunks and harvests departures by masked scans at
    #: control-timer boundaries.  Both cores consume the same
    #: purpose-split RNG streams, so their metrics JSON is byte
    #: identical (see ``repro.runtime.parity``).
    session_core: str = "objects"

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ConfigurationError(
                f"horizon must be > 0, got {self.horizon!r}")
        if self.epoch <= 0:
            raise ConfigurationError(
                f"epoch must be > 0, got {self.epoch!r}")
        if self.metrics_interval <= 0:
            raise ConfigurationError(
                f"metrics_interval must be > 0, got {self.metrics_interval!r}")
        if self.dram_budget < 0:
            raise ConfigurationError(
                f"dram_budget must be >= 0, got {self.dram_budget!r}")
        if self.configuration not in ("none", "buffer", "cache", "prefix"):
            raise ConfigurationError(
                f"configuration must be 'none', 'buffer', 'cache' or "
                f"'prefix', got {self.configuration!r}")
        if self.prefix_safety <= 0:
            raise ConfigurationError(
                f"prefix_safety must be > 0, got {self.prefix_safety!r}")
        if self.prefix_floor < 0:
            raise ConfigurationError(
                f"prefix_floor must be >= 0, got {self.prefix_floor!r}")
        if self.batch_window <= 0:
            raise ConfigurationError(
                f"batch_window must be > 0, got {self.batch_window!r}")
        if self.session_core not in ("objects", "table"):
            raise ConfigurationError(
                f"session_core must be 'objects' or 'table', "
                f"got {self.session_core!r}")
        if self.device is None:
            from repro.devices.catalog import MEMS_G3

            self.device = MEMS_G3


@dataclass(frozen=True, slots=True)
class ArrivalOutcome:
    """What one arrival did to the server (the admission verdict).

    The legacy run loop ignores it; the service facade
    (:mod:`repro.service`) turns it into tickets and bus events.
    """

    admitted: bool
    title: int
    session: Session | None = None
    served_by: str | None = None
    reason: str | None = None
    #: True when a prefix-mode arrival joined an open shared stream.
    batched: bool = False


@dataclass
class RuntimeResult:
    """Everything one runtime run produced."""

    events: list[SessionEvent]
    metrics: MetricsLog
    migrations: list[MigrationRecord]
    final_mode: str
    final_policy: str | None
    k_active: int
    final_capacity: int
    final_dram_required: float
    dram_budget: float
    degraded_time: float
    horizon: float
    events_executed: int
    notes: dict[str, float] = field(default_factory=dict)
    #: Planner counters for the run (cache hits / misses / evictions /
    #: size plus the warm-start probe and solve counters), from the
    #: runtime's private :class:`~repro.planner.Planner`.
    planner_cache: dict[str, int] = field(default_factory=dict)

    @property
    def totals(self) -> dict[str, int]:
        return self.metrics.totals()

    @property
    def blocking_probability(self) -> float:
        totals = self.totals
        arrivals = totals.get("arrivals", 0)
        if arrivals == 0:
            return 0.0
        return totals.get("rejects", 0) / arrivals

    @property
    def active_sessions(self) -> int:
        totals = self.totals
        return (totals.get("admits", 0) - totals.get("departures", 0)
                - totals.get("drops", 0))

    def to_json(self, *, indent: int | None = None) -> str:
        payload = {
            "schema": 1,
            "summary": {
                "final_mode": self.final_mode,
                "final_policy": self.final_policy,
                "k_active": self.k_active,
                "final_capacity": self.final_capacity,
                "final_dram_required": self.final_dram_required,
                "dram_budget": self.dram_budget,
                "degraded_time": self.degraded_time,
                "horizon": self.horizon,
                "events_executed": self.events_executed,
                "blocking_probability": self.blocking_probability,
                "totals": self.totals,
                "notes": dict(sorted(self.notes.items())),
                "planner_cache": dict(sorted(self.planner_cache.items())),
            },
            "events": [e.to_dict() for e in self.events],
            "migrations": [m.to_dict() for m in self.migrations],
            "metrics": json.loads(self.metrics.to_json()),
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    def summary(self) -> str:
        totals = self.totals
        lines = [
            f"mode {self.final_mode}"
            + (f" ({self.final_policy})" if self.final_policy else "")
            + f", k_active={self.k_active}, "
              f"capacity={self.final_capacity} streams",
            f"sessions: {totals.get('arrivals', 0)} arrived, "
            f"{totals.get('admits', 0)} admitted, "
            f"{totals.get('rejects', 0)} rejected, "
            f"{totals.get('drops', 0)} dropped, "
            f"{self.active_sessions} still playing",
            f"blocking {self.blocking_probability:.4f}, "
            f"degraded {self.degraded_time:.0f}s of {self.horizon:.0f}s, "
            f"DRAM {self.final_dram_required / MB:.1f} MB of "
            f"{self.dram_budget / MB:.1f} MB",
            f"migrations: "
            f"{sum(len(m.migrations_in) for m in self.migrations)} in / "
            f"{sum(len(m.migrations_out) for m in self.migrations)} out "
            f"over {len(self.migrations)} re-plans",
        ]
        if "fanout_sessions_per_stream" in self.notes:
            lines.append(
                f"vod: {self.notes['fanout_sessions_per_stream']:.2f} "
                f"sessions/stream over "
                f"{self.notes.get('streams_opened', 0.0):.0f} IO streams "
                f"({totals.get('batched_joins', 0)} batched joins)")
        if self.planner_cache:
            hits = self.planner_cache.get("hits", 0)
            misses = self.planner_cache.get("misses", 0)
            solves = hits + misses
            ratio = (hits / solves) if solves else 0.0
            lines.append(
                f"planner cache: {hits} hits / {misses} misses "
                f"({100.0 * ratio:.0f}% hit rate)")
            probes_warm = self.planner_cache.get("probes_warm", 0)
            probes_cold = self.planner_cache.get("probes_cold", 0)
            lines.append(
                f"planner probes: {probes_cold} cold / {probes_warm} warm "
                f"({self.planner_cache.get('solves_cold', 0)} cold / "
                f"{self.planner_cache.get('solves_warm', 0)} warm solves)")
        return "\n".join(lines)

    def dashboard(self) -> str:
        return render_dashboard(self.metrics)


class ServerRuntime:
    """One scenario's event-driven run loop."""

    def __init__(self, config: RuntimeConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._sampler = SessionSampler(config.workload, config.seed)
        self._sim = Simulator()
        self._events: list[SessionEvent] = []
        self._metrics = MetricsLog()
        self._migrations: list[MigrationRecord] = []
        self._sessions: dict[int, Session] = {}
        self._table: SessionTable | None = (
            SessionTable() if config.session_core == "table" else None)
        #: Earliest pending departure in the table core (lower bound;
        #: staying conservative only costs a harvest scan that finds
        #: nothing).  inf while no session is live.
        self._min_dep = float("inf")
        #: Absolute time of the next self-generated arrival (table
        #: core's run loop only; None while externally driven).
        self._next_arrival: float | None = None
        self._cached_set: set[int] | None = None
        self._next_id = 0
        self._mode = config.configuration
        self._policy: CachePolicy | None = None
        self._k_active = config.params.k
        self._rate_factor = 1.0  # surviving MEMS media-rate multiplier
        self._degraded_since: float | None = None
        self._degraded_time = 0.0
        self._arrivals_total = 0
        self._rejects_total = 0
        # A private planner so the cache counters describe this run only
        # (the epoch/metrics/recovery loops all solve through it).
        self._planner = Planner()
        require(config.device is not None,
                "RuntimeConfig validated without a MEMS device")
        self._bank: MemsBank | None = MemsBank(
            config.device, config.params.k, BankPolicy.ROUND_ROBIN)

        workload = config.workload
        self._placement: AdaptivePlacement | None = None
        self._prefix: PrefixPlacement | None = None
        self._prefix_decision: PrefixDecision | None = None
        self._batcher: MulticastBatcher | None = None
        if self._mode == "cache":
            self._placement = AdaptivePlacement(
                workload.n_titles, decay=config.placement_decay,
                prior_weights=workload.current_weights(),
                planner=self._planner)
            decision = self._placement.replan(self._degraded_params(), 0.0,
                                              dram_budget=config.dram_budget)
            self._policy = decision.policy
            self._record_migration(0.0, decision)
            self._controller = AdmissionController(
                self._degraded_params(), config.dram_budget,
                configuration="cache", policy=decision.policy,
                popularity=decision.popularity, planner=self._planner)
        elif self._mode == "prefix":
            self._batcher = MulticastBatcher()
            self._prefix = PrefixPlacement(
                workload.n_titles, decay=config.placement_decay,
                prior_weights=workload.current_weights(),
                safety=config.prefix_safety,
                floor_seconds=config.prefix_floor,
                window_cap=config.batch_window,
                planner=self._planner)
            decision = self._prefix.replan(self._degraded_params(), 0.0,
                                           dram_budget=config.dram_budget)
            self._policy = decision.policy
            self._prefix_decision = decision
            self._record_migration(0.0, decision)
            self._controller = AdmissionController(
                self._degraded_params(), config.dram_budget,
                spec=decision.spec, planner=self._planner)
        else:
            self._controller = AdmissionController(
                self._degraded_params(), config.dram_budget,
                configuration=self._mode, planner=self._planner)

    # -- Accessors (the service facade drives the engine through these) ------

    @property
    def sim(self) -> Simulator:
        """The run's event calendar (shared with the service facade)."""
        return self._sim

    @property
    def rng(self) -> np.random.Generator:
        """The run's single seeded generator."""
        return self._rng

    @property
    def sampler(self) -> SessionSampler:
        """The run's chunked workload sampler (shared with the facade)."""
        return self._sampler

    @property
    def session_table(self) -> SessionTable | None:
        """The struct-of-arrays session store (None on the object core)."""
        return self._table

    @property
    def mode(self) -> str:
        """Active configuration mode ("none"/"buffer"/"cache"/"prefix")."""
        return self._mode

    @property
    def controller(self) -> AdmissionController:
        """The live admission controller."""
        return self._controller

    @property
    def planner(self) -> Planner:
        """The run's private planner."""
        return self._planner

    @property
    def active_sessions(self) -> int:
        """Sessions currently playing."""
        return self._session_count()

    def _session_count(self) -> int:
        if self._table is not None:
            return self._table.active_count
        return len(self._sessions)

    @property
    def policy(self) -> CachePolicy | None:
        """The placement policy of the last plan (None in static modes)."""
        return self._policy

    @property
    def rejects_total(self) -> int:
        """Arrivals the engine itself has rejected so far."""
        return self._rejects_total

    @property
    def k_active(self) -> int:
        """Surviving MEMS devices."""
        return self._k_active

    # -- Geometry ------------------------------------------------------------

    def _degraded_params(self) -> SystemParameters:
        """Healthy parameters projected onto the surviving bank."""
        params = self.config.params
        k = max(self._k_active, 1)
        return params.replace(k=k, r_mems=params.r_mems * self._rate_factor)

    def _served_by(self, title: int) -> str:
        if self._mode == "cache":
            require(self._placement is not None,
                    "cache mode runs without an AdaptivePlacement")
            if self._cached_set is None:
                self._cached_set = set(self._placement.cached_titles)
            return "cache" if title in self._cached_set else "disk"
        return "buffer" if self._mode == "buffer" else "disk"

    # -- Event handlers ------------------------------------------------------

    def _schedule_arrival(self, sim: Simulator) -> None:
        delay = self._sampler.next_interarrival()
        sim.after(delay, self._on_arrival, "arrival")

    def _on_arrival(self, sim: Simulator) -> None:
        self.handle_arrival(sim)
        self._schedule_arrival(sim)

    def handle_arrival(self, sim: Simulator,
                       title: int | None = None) -> ArrivalOutcome:
        """Process one arrival: observe, admit or reject, schedule exit.

        The engine's admission operation: the legacy run loop calls it
        from the Poisson arrival chain, the service facade calls it for
        each :meth:`repro.service.MediaService.admit`.  When ``title``
        is None the workload draws one (the next draw of the seeded
        stream, so both paths consume the RNG identically).
        """
        if self._table is not None:
            return self._handle_arrival_table(sim, title)
        if title is None:
            title = self._sampler.next_title()
        self._arrivals_total += 1
        self._metrics.count("arrivals")
        if self._placement is not None:
            self._placement.observe(title)
        if self._prefix is not None:
            self._prefix.observe(title)
        if self._mode == "prefix":
            return self._admit_prefix(sim, title)
        decision = self._controller.try_admit()
        if decision.admitted:
            session = Session(session_id=self._next_id, title=title,
                              arrival_time=sim.now,
                              holding_time=self._sampler.next_holding(),
                              served_by=self._served_by(title))
            self._next_id += 1
            self._sessions[session.session_id] = session
            self._metrics.count("admits")
            self._events.append(SessionEvent(
                time=sim.now, kind=SessionEventKind.ADMIT,
                session_id=session.session_id, title=title,
                served_by=session.served_by))
            sim.after(session.holding_time, self._make_departure(session),
                      "departure")
            return ArrivalOutcome(admitted=True, title=title,
                                  session=session,
                                  served_by=session.served_by)
        self._rejects_total += 1
        self._metrics.count("rejects")
        self._events.append(SessionEvent(
            time=sim.now, kind=SessionEventKind.REJECT,
            session_id=-1, title=title, reason=decision.reason))
        return ArrivalOutcome(admitted=False, title=title,
                              reason=decision.reason)

    def handle_arrival_block(self, sim: Simulator,
                             titles: Sequence[int | None]
                             ) -> list[ArrivalOutcome]:
        """Process a burst of arrivals at the current instant.

        Equivalent, draw for draw and event for event, to calling
        :meth:`handle_arrival` once per entry of ``titles``: the title
        stream is consumed in order for the ``None`` entries, holding
        times are drawn per admission, and a departure coming due
        mid-burst (a zero-duration hold) still fires between the
        admissions around it.  On the table core the missing titles
        arrive as one vectorized block instead of one scalar draw per
        call, which is what makes the facade's burst path cheap.
        """
        if self._table is None:
            return [self.handle_arrival(sim, title) for title in titles]
        now = sim.now
        missing = sum(1 for title in titles if title is None)
        drawn = iter(self._sampler.title_block(missing).tolist())
        outcomes: list[ArrivalOutcome] = []
        k, n = 0, len(titles)
        for given in titles:
            if self._min_dep <= now:
                self._drain_table(now, inclusive=True)
            title = int(given) if given is not None else int(next(drawn))
            row, _, served, reason, batched = self._table_arrival(now, title)
            k += 1
            if row < 0:
                outcomes.append(ArrivalOutcome(
                    admitted=False, title=title, reason=reason))
                if k < n and self._mode != "prefix":
                    # Saturated tail: time does not advance inside the
                    # burst and a rejection leaves the population
                    # untouched, so every remaining entry rejects for
                    # the identical reason.  (Prefix mode is excluded:
                    # batched joins can admit past a rejection.)
                    rest = [int(g) if g is not None else int(next(drawn))
                            for g in titles[k:]]
                    self._bulk_reject(
                        np.full(len(rest), now), np.asarray(rest), reason)
                    # Frozen outcomes are shareable: one per distinct
                    # title covers the whole tail.
                    shared: dict[int, ArrivalOutcome] = {}
                    for t in rest:
                        outcome = shared.get(t)
                        if outcome is None:
                            outcome = ArrivalOutcome(
                                admitted=False, title=t, reason=reason)
                            shared[t] = outcome
                        outcomes.append(outcome)
                    break
            else:
                outcomes.append(ArrivalOutcome(
                    admitted=True, title=title,
                    session=self._session_view(row),
                    served_by=served, batched=batched))
        return outcomes

    def _admit_prefix(self, sim: Simulator, title: int) -> ArrivalOutcome:
        """Prefix-mode admission: join an open stream or charge a new one.

        A same-title arrival inside an open stream's batching window
        rides that stream for free — no admission check, no new IO.
        Only a brand-new stream goes through the controller, which
        therefore counts *IO streams*, the unit the planner's prefix
        demand model is stated in.
        """
        require(self._prefix is not None and self._batcher is not None,
                "prefix admission outside prefix mode")
        shared = self._batcher.joinable(title, sim.now)
        if shared is not None:
            session = Session(session_id=self._next_id, title=title,
                              arrival_time=sim.now,
                              holding_time=self._sampler.next_holding(),
                              served_by="shared",
                              stream_id=shared.stream_id)
            self._next_id += 1
            self._sessions[session.session_id] = session
            self._batcher.join(shared, session.session_id)
            self._metrics.count("admits")
            self._metrics.count("batched_joins")
            self._events.append(SessionEvent(
                time=sim.now, kind=SessionEventKind.ADMIT,
                session_id=session.session_id, title=title,
                served_by=session.served_by))
            sim.after(session.holding_time, self._make_departure(session),
                      "departure")
            return ArrivalOutcome(admitted=True, title=title,
                                  session=session,
                                  served_by=session.served_by, batched=True)
        decision = self._controller.try_admit()
        if decision.admitted:
            served_by = ("prefix" if self._prefix.is_resident(title)
                         else "disk")
            session = Session(session_id=self._next_id, title=title,
                              arrival_time=sim.now,
                              holding_time=self._sampler.next_holding(),
                              served_by=served_by)
            self._next_id += 1
            stream = self._batcher.open(
                title, sim.now, self._prefix.window_seconds(title),
                session.session_id)
            session.stream_id = stream.stream_id
            self._sessions[session.session_id] = session
            self._metrics.count("admits")
            self._metrics.count("streams_opened")
            self._events.append(SessionEvent(
                time=sim.now, kind=SessionEventKind.ADMIT,
                session_id=session.session_id, title=title,
                served_by=session.served_by))
            sim.after(session.holding_time, self._make_departure(session),
                      "departure")
            return ArrivalOutcome(admitted=True, title=title,
                                  session=session,
                                  served_by=session.served_by)
        self._rejects_total += 1
        self._metrics.count("rejects")
        self._events.append(SessionEvent(
            time=sim.now, kind=SessionEventKind.REJECT,
            session_id=-1, title=title, reason=decision.reason))
        return ArrivalOutcome(admitted=False, title=title,
                              reason=decision.reason)

    def _complete_departure(self, sim: Simulator, session: Session) -> None:
        """Release the departed session's slot and log the exit."""
        if session.stream_id is not None:
            # Shared stream: the IO slot frees only when the last
            # rider leaves.
            if (self._batcher is not None
                    and self._batcher.has_stream(session.stream_id)):
                if self._batcher.leave(session.stream_id,
                                       session.session_id):
                    self._controller.release(1)
                    self._metrics.count("streams_closed")
        else:
            self._controller.release(1)
        self._metrics.count("departures")
        self._events.append(SessionEvent(
            time=sim.now, kind=SessionEventKind.DEPART,
            session_id=session.session_id, title=session.title,
            served_by=session.served_by))

    def _make_departure(self, session: Session):
        def depart(sim: Simulator) -> None:
            # The session may have been shed by a failure already.
            if self._sessions.pop(session.session_id, None) is None:
                return
            self._complete_departure(sim, session)

        return depart

    def close_session(self, sim: Simulator, session_id: int) -> Session | None:
        """Tear one session down early (the service ``teardown`` op).

        Accounted exactly like a natural departure — the slot is
        released and a ``DEPART`` event is logged — so the engine's
        scheduled departure callback later finds the session gone and
        no-ops.  Returns the closed session, or None if the id is not
        live.
        """
        if self._table is not None:
            table = self._table
            # Departures due by now fire first, exactly as their
            # calendar events (scheduled at admit, hence with earlier
            # sequence numbers) would have.
            if self._min_dep <= sim.now:
                self._drain_table(sim.now, inclusive=True)
            if (not 0 <= session_id < len(table)
                    or table.state[session_id] != TABLE_ACTIVE):
                return None
            session = self._session_view(session_id)
            self._table_depart(sim.now, session_id)
            return session
        session = self._sessions.pop(session_id, None)
        if session is None:
            return None
        self._complete_departure(sim, session)
        return session

    # -- SessionTable core ---------------------------------------------------

    def _session_view(self, row: int) -> Session:
        """Materialize one table row as a ``Session`` (facade callers)."""
        table = self._table
        stream = int(table.stream[row])
        return Session(
            session_id=row, title=int(table.title[row]),
            arrival_time=float(table.arrival[row]),
            holding_time=float(table.departure[row] - table.arrival[row]),
            served_by=table.serve_name(int(table.served[row])),
            stream_id=stream if stream >= 0 else None)

    def sync(self, sim: Simulator) -> None:
        """Advance lazy session bookkeeping to ``sim.now``.

        A no-op on the object core (the calendar keeps it current);
        on the table core it harvests every departure due strictly
        before now, so read-style facade operations observe the same
        state the per-event calendar would have shown.
        """
        self._pre_control(sim)

    def _pre_control(self, sim: Simulator) -> None:
        """Advance the table core to ``sim.now`` before a control action.

        Periodic calendar entries keep their original sequence numbers,
        so at equal timestamps the object core runs control timers
        *before* any session event; the table core mirrors that by
        draining strictly below the timer's firing time.
        """
        if self._table is not None:
            self._drain_table(sim.now, inclusive=False)

    def _window_arrivals(self, until: float, *,
                         inclusive: bool) -> np.ndarray:
        """Arrival times of the self-driven chain due in this window."""
        first = self._next_arrival
        if first is None:
            return _EMPTY_TIMES
        if first > until or (not inclusive and first >= until):
            return _EMPTY_TIMES
        rest = self._sampler.arrival_times(first, until, inclusive=inclusive)
        times = np.concatenate((np.array([first]), rest))
        # Materialize the follower now, at the window's rate — exactly
        # when (and at what scale) the object core would have drawn it.
        self._next_arrival = (float(times[-1])
                              + self._sampler.next_interarrival())
        return times

    def _drain_table(self, until: float, *, inclusive: bool = False) -> None:
        """Replay the merged session stream up to ``until`` in time order.

        One masked scan finds every departure due in the window, the
        sampler yields the window's arrival times and titles as one
        vectorized block each, and a pointer merge replays them in the
        order the per-event calendar would have: a due departure
        precedes an arrival at the same timestamp, and equal departure
        times resolve in admit order.  Admissions whose (short) holding
        time ends inside the same window re-enter the merge through a
        small heap.
        """
        table = self._table
        require(table is not None, "table drain outside the table core")
        arrivals = self._window_arrivals(until, inclusive=inclusive)
        due_bound = (self._min_dep <= until if inclusive
                     else self._min_dep < until)
        rows = (table.harvest(until, inclusive=inclusive)
                if due_bound else _EMPTY_ROWS)
        n_arr, n_dep = len(arrivals), len(rows)
        if n_arr == 0 and n_dep == 0:
            return
        titles = self._sampler.title_block(n_arr)
        dep_times = table.departure[rows] if n_dep else _EMPTY_TIMES
        extra: list[tuple[float, int]] = []
        infinity = float("inf")
        i = j = 0
        while True:
            t_dep = dep_times[j] if j < n_dep else infinity
            use_extra = bool(extra) and extra[0][0] < t_dep
            if use_extra:
                t_dep = extra[0][0]
            t_arr = arrivals[i] if i < n_arr else infinity
            if t_dep == infinity and t_arr == infinity:
                break
            if t_dep <= t_arr:
                if use_extra:
                    _, row = heapq.heappop(extra)
                else:
                    row = int(rows[j])
                    j += 1
                if table.state[row] == TABLE_ACTIVE:
                    self._table_depart(float(table.departure[row]), row)
            else:
                row, dep, _, reason, _ = self._table_arrival(
                    float(t_arr), int(titles[i]))
                i += 1
                if row >= 0 and (dep <= until if inclusive else dep < until):
                    heapq.heappush(extra, (dep, row))
                elif row < 0 and i < n_arr and self._mode != "prefix":
                    # Saturated stretch: a rejection leaves the admitted
                    # population untouched, and nothing can free a slot
                    # before the next departure (or due re-entry), so
                    # every arrival strictly before that boundary
                    # rejects for the identical reason.  With no
                    # departures left the whole tail goes at once.
                    # (Prefix mode is excluded: batched joins can still
                    # admit past a rejection.)
                    boundary = dep_times[j] if j < n_dep else infinity
                    if extra and extra[0][0] < boundary:
                        boundary = extra[0][0]
                    if boundary == infinity:
                        self._bulk_reject(arrivals[i:], titles[i:], reason)
                        break
                    m = int(np.searchsorted(arrivals, boundary,
                                            side="left"))
                    if m > i:
                        self._bulk_reject(arrivals[i:m], titles[i:m],
                                          reason)
                        i = m
        self._min_dep = table.min_departure()

    def _table_arrival(self, now: float, title: int
                       ) -> tuple[int, float, str | None, str | None, bool]:
        """Admit or reject one arrival into the table at ``now``.

        Returns ``(row, departure_time, served_by, reason, batched)``
        with ``row = -1`` on rejection.  Mirrors the object core's
        ``handle_arrival`` decision logic step for step — same counter
        order, same RNG-stream consumption — so the parity harness can
        hold the two cores byte-identical.
        """
        table = self._table
        self._arrivals_total += 1
        self._metrics.count("arrivals")
        if self._placement is not None:
            self._placement.observe(title)
        if self._prefix is not None:
            self._prefix.observe(title)
        if self._mode == "prefix":
            return self._table_arrival_prefix(now, title)
        decision = self._controller.try_admit()
        if not decision.admitted:
            return self._table_reject(now, title, decision.reason)
        sid = self._next_id
        self._next_id += 1
        holding = self._sampler.next_holding()
        served = self._served_by(title)
        table.add(sid, title=title, arrival=now, holding=holding,
                  served_by=served, bitrate=self.config.params.bit_rate)
        dep = now + holding
        if dep < self._min_dep:
            self._min_dep = dep
        self._metrics.count("admits")
        self._events.append(SessionEvent(
            time=now, kind=SessionEventKind.ADMIT, session_id=sid,
            title=title, served_by=served))
        return sid, dep, served, None, False

    def _table_arrival_prefix(self, now: float, title: int
                              ) -> tuple[int, float, str | None,
                                         str | None, bool]:
        """Prefix-mode admission into the table (cf. ``_admit_prefix``)."""
        table = self._table
        require(self._prefix is not None and self._batcher is not None,
                "prefix admission outside prefix mode")
        shared = self._batcher.joinable(title, now)
        if shared is not None:
            sid = self._next_id
            self._next_id += 1
            holding = self._sampler.next_holding()
            table.add(sid, title=title, arrival=now, holding=holding,
                      served_by="shared",
                      bitrate=self.config.params.bit_rate,
                      stream_id=shared.stream_id)
            self._batcher.join(shared, sid)
            dep = now + holding
            if dep < self._min_dep:
                self._min_dep = dep
            self._metrics.count("admits")
            self._metrics.count("batched_joins")
            self._events.append(SessionEvent(
                time=now, kind=SessionEventKind.ADMIT, session_id=sid,
                title=title, served_by="shared"))
            return sid, dep, "shared", None, True
        decision = self._controller.try_admit()
        if not decision.admitted:
            return self._table_reject(now, title, decision.reason)
        served = ("prefix" if self._prefix.is_resident(title) else "disk")
        sid = self._next_id
        self._next_id += 1
        holding = self._sampler.next_holding()
        stream = self._batcher.open(
            title, now, self._prefix.window_seconds(title), sid)
        table.add(sid, title=title, arrival=now, holding=holding,
                  served_by=served, bitrate=self.config.params.bit_rate,
                  stream_id=stream.stream_id)
        dep = now + holding
        if dep < self._min_dep:
            self._min_dep = dep
        self._metrics.count("admits")
        self._metrics.count("streams_opened")
        self._events.append(SessionEvent(
            time=now, kind=SessionEventKind.ADMIT, session_id=sid,
            title=title, served_by=served))
        return sid, dep, served, None, False

    def _bulk_reject(self, times: np.ndarray, titles: np.ndarray,
                     reason: str | None) -> None:
        """Reject a whole run of arrivals at once (saturated window).

        Event-for-event identical to calling :meth:`_table_arrival` on
        each entry when no admission can interleave: counters move by
        the block size, the placement observes the titles as one
        scatter-add, and the audit log gains one REJECT per arrival.
        """
        n = len(times)
        self._arrivals_total += n
        self._metrics.count("arrivals", n)
        if self._placement is not None:
            self._placement.observe_block(titles)
        if self._prefix is not None:
            self._prefix.observe_block(titles)
        self._rejects_total += n
        self._metrics.count("rejects", n)
        append = self._events.append
        for now, title in zip(times.tolist(), titles.tolist()):
            append(SessionEvent(
                time=now, kind=SessionEventKind.REJECT,
                session_id=-1, title=title, reason=reason))

    def _table_reject(self, now: float, title: int, reason: str | None
                      ) -> tuple[int, float, str | None, str | None, bool]:
        self._rejects_total += 1
        self._metrics.count("rejects")
        self._events.append(SessionEvent(
            time=now, kind=SessionEventKind.REJECT,
            session_id=-1, title=title, reason=reason))
        return -1, float("inf"), None, reason, False

    def _table_depart(self, now: float, row: int) -> None:
        """Release one table row's slot and log the exit (cf.
        ``_complete_departure``)."""
        table = self._table
        stream = int(table.stream[row])
        if stream >= 0:
            if (self._batcher is not None
                    and self._batcher.has_stream(stream)):
                if self._batcher.leave(stream, row):
                    self._controller.release(1)
                    self._metrics.count("streams_closed")
        else:
            self._controller.release(1)
        self._metrics.count("departures")
        self._events.append(SessionEvent(
            time=now, kind=SessionEventKind.DEPART, session_id=row,
            title=int(table.title[row]),
            served_by=table.serve_name(int(table.served[row]))))
        table.mark_departed(row)

    def _handle_arrival_table(self, sim: Simulator,
                              title: int | None) -> ArrivalOutcome:
        """Externally driven arrival on the table core (facade path)."""
        if self._min_dep <= sim.now:
            self._drain_table(sim.now, inclusive=True)
        if title is None:
            title = self._sampler.next_title()
        row, dep, served, reason, batched = self._table_arrival(
            sim.now, int(title))
        if row < 0:
            return ArrivalOutcome(admitted=False, title=int(title),
                                  reason=reason)
        return ArrivalOutcome(admitted=True, title=int(title),
                              session=self._session_view(row),
                              served_by=served, batched=batched)

    def _drop_row(self, sim: Simulator, row: int, reason: str) -> None:
        """Mark one table row dropped and log it (slot NOT released)."""
        table = self._table
        self._metrics.count("drops")
        self._events.append(SessionEvent(
            time=sim.now, kind=SessionEventKind.DROP,
            session_id=row, title=int(table.title[row]),
            served_by=table.serve_name(int(table.served[row])),
            reason=reason))
        table.mark_dropped(row)

    def _shed_sessions(self, sim: Simulator, n_drop: int,
                       reason: str) -> None:
        """Drop the ``n_drop`` newest sessions (least watched first)."""
        if self._table is not None:
            for row in self._table.shed_newest(n_drop):
                self._controller.release(1)
                self._drop_row(sim, int(row), reason)
            return
        victims = list(self._sessions.values())[::-1][:n_drop]
        for session in victims:
            del self._sessions[session.session_id]
            self._controller.release(1)
            self._metrics.count("drops")
            self._events.append(SessionEvent(
                time=sim.now, kind=SessionEventKind.DROP,
                session_id=session.session_id, title=session.title,
                served_by=session.served_by, reason=reason))

    def _shed_streams(self, sim: Simulator, n_drop: int,
                      reason: str) -> None:
        """Close the ``n_drop`` newest IO streams and drop their riders."""
        require(self._batcher is not None,
                "stream shedding outside prefix mode")
        table = self._table
        for stream in self._batcher.drop_newest(n_drop):
            self._controller.release(1)
            self._metrics.count("streams_closed")
            for session_id in stream.session_ids:
                if table is not None:
                    if (0 <= session_id < len(table)
                            and table.state[session_id] == TABLE_ACTIVE):
                        self._drop_row(sim, session_id, reason)
                    continue
                session = self._sessions.pop(session_id, None)
                if session is None:  # pragma: no cover - defensive
                    continue
                self._metrics.count("drops")
                self._events.append(SessionEvent(
                    time=sim.now, kind=SessionEventKind.DROP,
                    session_id=session.session_id, title=session.title,
                    served_by=session.served_by, reason=reason))

    def _record_migration(self, time: float, decision) -> None:
        if decision.migrations_in or decision.migrations_out:
            self._metrics.count("migrations_in", len(decision.migrations_in))
            self._metrics.count("migrations_out",
                                len(decision.migrations_out))
            self._migrations.append(MigrationRecord(
                time=time, policy=decision.policy.value,
                migrations_in=decision.migrations_in,
                migrations_out=decision.migrations_out,
                n_cached=len(decision.cached_titles)))

    def _replan(self, sim: Simulator, *, reason: str) -> None:
        """Re-rank, migrate, and swap the admission demand model."""
        require(self._placement is not None,
                "replan requested outside cache mode")
        self._metrics.count("replans")
        decision = self._placement.replan(
            self._degraded_params(), float(self._session_count()),
            dram_budget=self.config.dram_budget)
        self._policy = decision.policy
        self._record_migration(sim.now, decision)
        self._controller.reconfigure(params=self._degraded_params(),
                                     configuration="cache",
                                     policy=decision.policy,
                                     popularity=decision.popularity)
        # Live sessions follow their titles across the migration.
        cached = set(decision.cached_titles)
        self._cached_set = cached
        if self._table is not None:
            table = self._table
            rows = table.active_rows()
            if len(rows):
                hit = (np.isin(table.title[rows],
                               np.fromiter(cached, dtype=np.int64,
                                           count=len(cached)))
                       if cached else np.zeros(len(rows), dtype=bool))
                table.served[rows] = np.where(
                    hit, table.serve_code("cache"), table.serve_code("disk"))
        else:
            for session in self._sessions.values():
                session.served_by = ("cache" if session.title in cached
                                     else "disk")
        # The observed popularity may be harsher than what the old
        # population was admitted under; shed to the new capacity.
        capacity = self._controller.capacity()
        if self._session_count() > capacity:
            self._shed_sessions(sim, self._session_count() - capacity,
                                reason)

    def _replan_prefix(self, sim: Simulator, *, reason: str) -> None:
        """Re-allocate prefixes and swap the admission spec (in streams)."""
        require(self._prefix is not None and self._batcher is not None,
                "prefix replan outside prefix mode")
        self._metrics.count("replans")
        decision = self._prefix.replan(
            self._degraded_params(), float(self._batcher.active_streams),
            dram_budget=self.config.dram_budget)
        self._policy = decision.policy
        self._prefix_decision = decision
        self._record_migration(sim.now, decision)
        self._controller.reconfigure(params=self._degraded_params(),
                                     spec=decision.spec)
        # Stream openers follow their titles across the migration
        # (riders keep "shared" — their IO is the opener's).
        if self._table is not None:
            table = self._table
            rows = table.active_rows()
            rows = rows[table.served[rows] != table.serve_code("shared")]
            if len(rows):
                resident = np.fromiter(
                    self._prefix.resident_titles, dtype=np.int64)
                hit = (np.isin(table.title[rows], resident)
                       if len(resident) else np.zeros(len(rows), dtype=bool))
                table.served[rows] = np.where(
                    hit, table.serve_code("prefix"),
                    table.serve_code("disk"))
        else:
            for session in self._sessions.values():
                if session.served_by != "shared":
                    session.served_by = (
                        "prefix" if self._prefix.is_resident(session.title)
                        else "disk")
        capacity = self._controller.capacity()
        if self._batcher.active_streams > capacity:
            self._shed_streams(
                sim, self._batcher.active_streams - capacity, reason)

    def _on_epoch(self, sim: Simulator) -> None:
        self.run_epoch(sim)

    def run_epoch(self, sim: Simulator) -> bool:
        """Run one epoch re-plan now; True when a re-plan happened.

        The replan operation of the control plane: the legacy loop
        fires it on the epoch timer, the service facade fires it off
        the request path (possibly delayed by ``replan_latency``).
        Static modes ("none"/"buffer") have nothing to re-plan.
        """
        self._pre_control(sim)
        if self._mode == "cache":
            self._replan(sim, reason="epoch re-plan over capacity")
            return True
        if self._mode == "prefix":
            self._replan_prefix(sim, reason="epoch re-plan over capacity")
            return True
        return False

    def _fail_prefix(self, sim: Simulator) -> None:
        """Degrade the prefix mode after a bank failure.

        While any device survives the normal epoch machinery absorbs
        the hit: re-plan against the shrunken bank and shed whole
        streams over the new capacity.  Total bank loss collapses the
        mode — no prefixes means no instant-start batching, so every
        surviving session needs its own direct-disk stream and the
        runtime falls back to a rebuilt ``"none"`` controller.
        """
        require(self._prefix is not None and self._batcher is not None,
                "prefix failure handling outside prefix mode")
        if self._k_active >= 1:
            self._replan_prefix(sim, reason="device failure")
            return
        from repro.core.popularity import EmpiricalPopularity

        popularity = EmpiricalPopularity.from_counts(self._prefix.scores())
        plan = plan_recovery(self.config.params, self.config.dram_budget,
                             self._session_count(), popularity,
                             k_active=0, r_mems_factor=self._rate_factor,
                             planner=self._planner)
        if plan.n_dropped:
            # Shed sessions directly: the old controller counted IO
            # streams, so its slots are not session slots to release.
            if self._table is not None:
                for row in self._table.shed_newest(plan.n_dropped):
                    self._drop_row(sim, int(row), "device failure")
            else:
                victims = (list(self._sessions.values())
                           [::-1][:plan.n_dropped])
                for session in victims:
                    del self._sessions[session.session_id]
                    self._metrics.count("drops")
                    self._events.append(SessionEvent(
                        time=sim.now, kind=SessionEventKind.DROP,
                        session_id=session.session_id, title=session.title,
                        served_by=session.served_by,
                        reason="device failure"))
        # Batching collapses with the bank: every survivor becomes its
        # own direct-disk stream.  A fresh (empty) batcher keeps the
        # live gauges at zero; the cumulative fan-out counters carry
        # over so the end-of-run ratio still covers the whole run.
        self._batcher.dissolve()
        fresh = MulticastBatcher()
        fresh.sessions_total = self._batcher.sessions_total
        fresh.streams_total = self._batcher.streams_total
        self._batcher = fresh
        if self._table is not None:
            table = self._table
            rows = table.active_rows()
            table.stream[rows] = -1
            table.served[rows] = table.serve_code("disk")
        else:
            for session in self._sessions.values():
                session.stream_id = None
                session.served_by = "disk"
        self._prefix = None
        self._prefix_decision = None
        self._mode = plan.mode
        self._policy = plan.policy
        self._controller = AdmissionController(
            self._degraded_params(), self.config.dram_budget,
            configuration=plan.mode, planner=self._planner)
        for _ in range(self._session_count()):
            require(self._controller.try_admit().admitted,
                    "recovery plan under-counted the surviving sessions")

    def _make_failure(self, event: FailureEvent):
        def fail(sim: Simulator) -> None:
            self.apply_failure(sim, event)

        return fail

    def apply_failure(self, sim: Simulator, event: FailureEvent) -> None:
        """Degrade the bank per ``event`` and re-plan the survivors."""
        self._pre_control(sim)
        self._metrics.count("failures")
        if event.kind is FailureKind.DEVICE_LOSS:
            self._k_active = max(0, self._k_active - event.count)
        else:
            self._rate_factor *= event.factor
        if self._mode == "prefix":
            self._fail_prefix(sim)
            self._bank = (None if self._k_active < 1 else MemsBank(
                self.config.device, self._k_active,
                BankPolicy.ROUND_ROBIN))
            if self._degraded_since is None:
                self._degraded_since = sim.now
            return
        popularity = self.config.workload.popularity
        if self._placement is not None:
            # Judge recovery against the observed traffic, not the
            # configured distribution.
            from repro.core.popularity import EmpiricalPopularity

            popularity = EmpiricalPopularity.from_counts(
                self._placement.scores())
        plan = plan_recovery(self.config.params,
                             self.config.dram_budget,
                             self._session_count(), popularity,
                             k_active=self._k_active,
                             r_mems_factor=self._rate_factor,
                             planner=self._planner)
        if plan.n_dropped:
            self._shed_sessions(sim, plan.n_dropped, "device failure")
        previous_mode = self._mode
        self._mode = plan.mode
        self._policy = plan.policy
        if plan.mode == "cache":
            self._controller.reconfigure(
                params=self._degraded_params(), configuration="cache",
                policy=plan.policy, popularity=popularity)
            # Shrink the cached set to the surviving capacity now
            # rather than waiting for the next epoch tick.
            self._replan(sim, reason="device failure")
        else:
            self._controller.reconfigure(
                params=self._degraded_params(),
                configuration=plan.mode)
            if previous_mode == "cache":
                if self._table is not None:
                    table = self._table
                    rows = table.active_rows()
                    # _served_by is title-independent outside cache mode.
                    table.served[rows] = table.serve_code(
                        "buffer" if self._mode == "buffer" else "disk")
                else:
                    for session in self._sessions.values():
                        session.served_by = self._served_by(session.title)
        self._bank = (None if self._k_active < 1 else MemsBank(
            self.config.device, self._k_active, BankPolicy.ROUND_ROBIN))
        if self._degraded_since is None:
            self._degraded_since = sim.now

    def apply_drift(self, sim: Simulator, event: DriftEvent) -> None:
        """Rotate the title ranking (popularity drift)."""
        self._pre_control(sim)
        self.config.workload.rotate_popularity(event.shift)

    def apply_surge(self, sim: Simulator, event: SurgeEvent) -> None:
        """Scale the arrival rate (flash crowd)."""
        self._pre_control(sim)
        self.config.workload.scale_rate(event.factor)

    def apply_focus(self, sim: Simulator, event: FocusEvent) -> None:
        """Concentrate arrivals onto one title (focused crowd)."""
        self._pre_control(sim)
        self.config.workload.focus_title(event.title, event.weight)

    def _make_drift(self, event: DriftEvent):
        def drift(sim: Simulator) -> None:
            self.apply_drift(sim, event)

        return drift

    def _make_surge(self, event: SurgeEvent):
        def surge(sim: Simulator) -> None:
            self.apply_surge(sim, event)

        return surge

    def _make_focus(self, event: FocusEvent):
        def focus(sim: Simulator) -> None:
            self.apply_focus(sim, event)

        return focus

    # -- Gauges --------------------------------------------------------------

    def _cache_session_count(self) -> int:
        """Live sessions currently served from the MEMS cache."""
        if self._table is not None:
            table = self._table
            rows = table.active_rows()
            return int(np.count_nonzero(
                table.served[rows] == table.serve_code("cache")))
        return sum(1 for s in self._sessions.values()
                   if s.served_by == "cache")

    def _device_utilization(self) -> float:
        """Load fraction of the bottleneck device class."""
        params = self.config.params
        n = self._session_count()
        disk_load = n * params.bit_rate / params.r_disk
        if self._bank is None:
            return disk_load
        bank_rate = self._bank.aggregate_bandwidth * self._rate_factor
        if self._mode == "prefix":
            require(self._batcher is not None
                    and self._prefix_decision is not None,
                    "prefix mode runs without a batcher/decision")
            # Fan-out means the devices see IO streams, not sessions;
            # the prefix fraction splits each stream's bytes.
            n_io = float(self._batcher.active_streams)
            h = self._prefix_decision.mems_fraction
            disk_load = n_io * (1.0 - h) * params.bit_rate / params.r_disk
            return max(disk_load, n_io * h * params.bit_rate / bank_rate)
        if self._mode == "cache":
            n_cache = self._cache_session_count()
            disk_load = (n - n_cache) * params.bit_rate / params.r_disk
            return max(disk_load, n_cache * params.bit_rate / bank_rate)
        if self._mode == "buffer":
            # Buffered traffic crosses the bank twice (write + read).
            return max(disk_load, 2 * n * params.bit_rate / bank_rate)
        return disk_load

    def seal_metrics(self, sim: Simulator) -> None:
        """Close one reporting interval now (the service metrics op)."""
        self._on_metrics(sim)

    def _on_metrics(self, sim: Simulator) -> None:
        self._pre_control(sim)
        workload = self.config.workload
        n = self._session_count()
        n_cache = self._cache_session_count()
        try:
            dram = self._controller.dram_required()
        except (AdmissionError, CapacityError):  # pragma: no cover
            dram = float("inf")
        capacity = self._controller.capacity()
        degraded = (self._mode != self.config.configuration
                    or self._k_active < self.config.params.k
                    or self._rate_factor < 1.0)
        degraded_time = self._degraded_time
        if self._degraded_since is not None:
            degraded_time += sim.now - self._degraded_since
        gauges = {
            "active_sessions": float(n),
            "cache_sessions": float(n_cache),
            "cache_hit_ratio": (n_cache / n) if n else 0.0,
            "dram_required": dram,
            "dram_occupancy": (dram / self.config.dram_budget
                               if self.config.dram_budget else 0.0),
            "device_utilization": self._device_utilization(),
            "capacity": float(capacity),
            "blocking_probability": (self._rejects_total
                                     / self._arrivals_total
                                     if self._arrivals_total else 0.0),
            "erlang_b_prediction": predicted_blocking(
                workload.arrival_rate * workload.rate_factor,
                workload.mean_holding, capacity),
            "k_active": float(self._k_active),
            "degraded": 1.0 if degraded else 0.0,
            "degraded_time": degraded_time,
        }
        if self._batcher is not None:
            streams = self._batcher.active_streams
            h = (self._prefix_decision.mems_fraction
                 if self._prefix_decision is not None else 0.0)
            allocation = (self._prefix.allocation
                          if self._prefix is not None else None)
            mems_bytes = (allocation.total_bytes
                          if allocation is not None else 0.0)
            gauges["io_streams"] = float(streams)
            gauges["fanout_ratio"] = (n / streams) if streams else 0.0
            gauges["fanout_cumulative"] = self._batcher.fanout
            gauges["prefix_hit_rate"] = h
            gauges["prefix_resident_titles"] = float(
                len(self._prefix.resident_titles)
                if self._prefix is not None else 0)
            gauges["sessions_per_mems_byte"] = (
                n / mems_bytes if mems_bytes > 0 else 0.0)
            gauges["tail_disk_load"] = (
                streams * (1.0 - h) * self.config.params.bit_rate
                / self.config.params.r_disk)
        stats = self._planner.stats()
        solves = stats["hits"] + stats["misses"]
        gauges["planner_cache_hits"] = float(stats["hits"])
        gauges["planner_cache_misses"] = float(stats["misses"])
        gauges["planner_cache_hit_ratio"] = (
            stats["hits"] / solves if solves else 0.0)
        gauges["planner_probe_cold"] = float(stats["probes_cold"])
        gauges["planner_probe_warm"] = float(stats["probes_warm"])
        gauges["planner_probe_total"] = float(stats["probes_cold"]
                                              + stats["probes_warm"])
        self._metrics.close_interval(sim.now, gauges)

    # -- Run loop ------------------------------------------------------------

    def run(self) -> RuntimeResult:
        config = self.config
        sim = self._sim
        if self._table is not None:
            # No per-arrival calendar events: the whole Poisson chain
            # drains in vectorized windows at control-timer boundaries.
            # Seed it with the first draw the object core would make.
            self._next_arrival = self._sampler.next_interarrival()
        else:
            self._schedule_arrival(sim)
        sim.every(config.epoch, self._on_epoch, "epoch")
        sim.every(config.metrics_interval, self._on_metrics, "metrics")
        for failure in sorted(config.failures, key=lambda e: e.time):
            sim.at(failure.time, self._make_failure(failure), "failure")
        for drift in sorted(config.drifts, key=lambda e: e.time):
            sim.at(drift.time, self._make_drift(drift), "drift")
        for surge in sorted(config.surges, key=lambda e: e.time):
            sim.at(surge.time, self._make_surge(surge), "surge")
        for focus in sorted(config.focuses, key=lambda e: e.time):
            sim.at(focus.time, self._make_focus(focus), "focus")
        sim.run(until=config.horizon)
        return self.finalize()

    def finalize(self) -> RuntimeResult:
        """Seal the run after the horizon and build the result.

        Shared by the legacy :meth:`run` loop and the service traffic
        programs, so both paths produce the result through identical
        code (the parity harness compares the JSON byte for byte).
        """
        config = self.config
        sim = self._sim
        if self._table is not None:
            # Everything due through the calendar's final instant runs
            # before the seal — including events at exactly that time,
            # which ``run`` (inclusive) would have executed.  ``run``
            # leaves ``now`` at its ``until`` bound, so a full run
            # drains through the horizon; a driver that stopped the
            # calendar early (a facade harness mid-run) seals exactly
            # where the object core's calendar stopped.
            self._drain_table(sim.now, inclusive=True)
        if (not self._metrics.snapshots
                or self._metrics.snapshots[-1].t_end < config.horizon):
            self._on_metrics(sim)
        if self._degraded_since is not None:
            self._degraded_time += config.horizon - self._degraded_since
            self._degraded_since = None
        try:
            final_dram = self._controller.dram_required()
        except (AdmissionError, CapacityError):  # pragma: no cover
            final_dram = float("inf")
        notes = {"offered_load": config.workload.offered_load,
                 "seed": float(config.seed)}
        if self._batcher is not None:
            notes["fanout_sessions_per_stream"] = self._batcher.fanout
            notes["streams_opened"] = float(self._batcher.streams_total)
            notes["batched_sessions"] = float(self._batcher.sessions_total)
        return RuntimeResult(
            events=self._events,
            metrics=self._metrics,
            migrations=self._migrations,
            final_mode=self._mode,
            final_policy=self._policy.value if self._policy else None,
            k_active=self._k_active,
            final_capacity=self._controller.capacity(),
            final_dram_required=final_dram,
            dram_budget=config.dram_budget,
            degraded_time=self._degraded_time,
            horizon=config.horizon,
            events_executed=sim.events_executed,
            notes=notes,
            planner_cache=self._planner.stats())


def run_runtime(config: RuntimeConfig) -> RuntimeResult:
    """Convenience: build and run one scenario."""
    return ServerRuntime(config).run()
