"""The online server runtime: analytical models as live controllers.

Everything the repository could previously evaluate only as a static
snapshot — admission feasibility (Theorems 1-4), cache placement
(Section 4.2), Erlang-B blocking — runs here as a closed loop on the
discrete-event engine:

* Poisson session arrivals with exponential holding times flow through
  an :class:`~repro.scheduling.admission.AdmissionController`;
* between epochs the :class:`~repro.runtime.placement.AdaptivePlacement`
  re-ranks titles by observed popularity and migrates the MEMS-cached
  set, re-solving the striped/replicated cache design each time;
* injected faults (:mod:`repro.runtime.failures`) shrink or throttle
  the bank mid-run and the runtime recomputes a feasible degraded
  configuration, shedding the newest sessions when it must;
* under the VoD ``"prefix"`` mode (:mod:`repro.vod`) the bank holds
  per-title *prefixes*, same-title arrivals inside a batching window
  share one IO stream through a
  :class:`~repro.vod.multicast.MulticastBatcher`, and admission
  control charges per *stream* rather than per session;
* every reporting interval the :class:`~repro.runtime.metrics.MetricsLog`
  seals a snapshot of the session funnel and operator gauges.

A fixed seed reproduces the run exactly: all randomness flows through
one generator and the event calendar is stable for simultaneous events.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.core.cache_model import CachePolicy
from repro.core.parameters import SystemParameters
from repro.devices.bank import BankPolicy, MemsBank
from repro.devices.mems import MemsDevice
from repro.errors import (
    AdmissionError,
    CapacityError,
    ConfigurationError,
    require,
)
from repro.planner.solver import Planner
from repro.runtime.failures import FailureEvent, FailureKind, plan_recovery
from repro.runtime.metrics import MetricsLog, render_dashboard
from repro.runtime.placement import AdaptivePlacement
from repro.units import MB
from repro.runtime.sessions import (
    Session,
    SessionEvent,
    SessionEventKind,
    SessionWorkload,
)
from repro.scheduling.admission import AdmissionController
from repro.simulation.engine import Simulator
from repro.vod.multicast import MulticastBatcher
from repro.vod.placement import PrefixDecision, PrefixPlacement
from repro.workloads.arrivals import predicted_blocking


@dataclass(frozen=True)
class DriftEvent:
    """Popularity drift: rotate the title ranking at ``time``."""

    time: float
    shift: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"time must be >= 0, got {self.time!r}")


@dataclass(frozen=True)
class SurgeEvent:
    """Flash crowd: scale the arrival rate by ``factor`` at ``time``."""

    time: float
    factor: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"time must be >= 0, got {self.time!r}")
        if self.factor <= 0:
            raise ConfigurationError(
                f"factor must be > 0, got {self.factor!r}")


@dataclass(frozen=True)
class FocusEvent:
    """Focused flash crowd: ``weight`` of arrivals collapse onto
    ``title`` at ``time`` (``weight=0`` clears the focus)."""

    time: float
    title: int
    weight: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"time must be >= 0, got {self.time!r}")
        if self.title < 0:
            raise ConfigurationError(
                f"title must be >= 0, got {self.title!r}")
        if not 0.0 <= self.weight <= 1.0:
            raise ConfigurationError(
                f"weight must be in [0, 1], got {self.weight!r}")


@dataclass(frozen=True)
class MigrationRecord:
    """One epoch's placement change."""

    time: float
    policy: str
    migrations_in: tuple[int, ...]
    migrations_out: tuple[int, ...]
    n_cached: int

    def to_dict(self) -> dict:
        return {"time": self.time, "policy": self.policy,
                "migrations_in": list(self.migrations_in),
                "migrations_out": list(self.migrations_out),
                "n_cached": self.n_cached}


@dataclass
class RuntimeConfig:
    """Everything one runtime scenario needs."""

    params: SystemParameters
    dram_budget: float
    workload: SessionWorkload
    horizon: float
    epoch: float = 600.0
    metrics_interval: float = 60.0
    #: "cache" (adaptive placement), "buffer", "none" (direct disk), or
    #: "prefix" (VoD prefix cache with multicast batching).
    configuration: str = "cache"
    device: MemsDevice | None = None
    placement_decay: float = 0.5
    failures: tuple[FailureEvent, ...] = ()
    drifts: tuple[DriftEvent, ...] = ()
    surges: tuple[SurgeEvent, ...] = ()
    focuses: tuple[FocusEvent, ...] = ()
    #: Prefix-mode sizing knobs (ignored outside ``"prefix"``): startup
    #: safety factor, minimum prefix seconds, and the longest batching
    #: window a hot title's prefix may grow to.
    prefix_safety: float = 2.0
    prefix_floor: float = 1.0
    batch_window: float = 120.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ConfigurationError(
                f"horizon must be > 0, got {self.horizon!r}")
        if self.epoch <= 0:
            raise ConfigurationError(
                f"epoch must be > 0, got {self.epoch!r}")
        if self.metrics_interval <= 0:
            raise ConfigurationError(
                f"metrics_interval must be > 0, got {self.metrics_interval!r}")
        if self.dram_budget < 0:
            raise ConfigurationError(
                f"dram_budget must be >= 0, got {self.dram_budget!r}")
        if self.configuration not in ("none", "buffer", "cache", "prefix"):
            raise ConfigurationError(
                f"configuration must be 'none', 'buffer', 'cache' or "
                f"'prefix', got {self.configuration!r}")
        if self.prefix_safety <= 0:
            raise ConfigurationError(
                f"prefix_safety must be > 0, got {self.prefix_safety!r}")
        if self.prefix_floor < 0:
            raise ConfigurationError(
                f"prefix_floor must be >= 0, got {self.prefix_floor!r}")
        if self.batch_window <= 0:
            raise ConfigurationError(
                f"batch_window must be > 0, got {self.batch_window!r}")
        if self.device is None:
            from repro.devices.catalog import MEMS_G3

            self.device = MEMS_G3


@dataclass(frozen=True)
class ArrivalOutcome:
    """What one arrival did to the server (the admission verdict).

    The legacy run loop ignores it; the service facade
    (:mod:`repro.service`) turns it into tickets and bus events.
    """

    admitted: bool
    title: int
    session: Session | None = None
    served_by: str | None = None
    reason: str | None = None
    #: True when a prefix-mode arrival joined an open shared stream.
    batched: bool = False


@dataclass
class RuntimeResult:
    """Everything one runtime run produced."""

    events: list[SessionEvent]
    metrics: MetricsLog
    migrations: list[MigrationRecord]
    final_mode: str
    final_policy: str | None
    k_active: int
    final_capacity: int
    final_dram_required: float
    dram_budget: float
    degraded_time: float
    horizon: float
    events_executed: int
    notes: dict[str, float] = field(default_factory=dict)
    #: Planner counters for the run (cache hits / misses / evictions /
    #: size plus the warm-start probe and solve counters), from the
    #: runtime's private :class:`~repro.planner.Planner`.
    planner_cache: dict[str, int] = field(default_factory=dict)

    @property
    def totals(self) -> dict[str, int]:
        return self.metrics.totals()

    @property
    def blocking_probability(self) -> float:
        totals = self.totals
        arrivals = totals.get("arrivals", 0)
        if arrivals == 0:
            return 0.0
        return totals.get("rejects", 0) / arrivals

    @property
    def active_sessions(self) -> int:
        totals = self.totals
        return (totals.get("admits", 0) - totals.get("departures", 0)
                - totals.get("drops", 0))

    def to_json(self, *, indent: int | None = None) -> str:
        payload = {
            "schema": 1,
            "summary": {
                "final_mode": self.final_mode,
                "final_policy": self.final_policy,
                "k_active": self.k_active,
                "final_capacity": self.final_capacity,
                "final_dram_required": self.final_dram_required,
                "dram_budget": self.dram_budget,
                "degraded_time": self.degraded_time,
                "horizon": self.horizon,
                "events_executed": self.events_executed,
                "blocking_probability": self.blocking_probability,
                "totals": self.totals,
                "notes": dict(sorted(self.notes.items())),
                "planner_cache": dict(sorted(self.planner_cache.items())),
            },
            "events": [e.to_dict() for e in self.events],
            "migrations": [m.to_dict() for m in self.migrations],
            "metrics": json.loads(self.metrics.to_json()),
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    def summary(self) -> str:
        totals = self.totals
        lines = [
            f"mode {self.final_mode}"
            + (f" ({self.final_policy})" if self.final_policy else "")
            + f", k_active={self.k_active}, "
              f"capacity={self.final_capacity} streams",
            f"sessions: {totals.get('arrivals', 0)} arrived, "
            f"{totals.get('admits', 0)} admitted, "
            f"{totals.get('rejects', 0)} rejected, "
            f"{totals.get('drops', 0)} dropped, "
            f"{self.active_sessions} still playing",
            f"blocking {self.blocking_probability:.4f}, "
            f"degraded {self.degraded_time:.0f}s of {self.horizon:.0f}s, "
            f"DRAM {self.final_dram_required / MB:.1f} MB of "
            f"{self.dram_budget / MB:.1f} MB",
            f"migrations: "
            f"{sum(len(m.migrations_in) for m in self.migrations)} in / "
            f"{sum(len(m.migrations_out) for m in self.migrations)} out "
            f"over {len(self.migrations)} re-plans",
        ]
        if "fanout_sessions_per_stream" in self.notes:
            lines.append(
                f"vod: {self.notes['fanout_sessions_per_stream']:.2f} "
                f"sessions/stream over "
                f"{self.notes.get('streams_opened', 0.0):.0f} IO streams "
                f"({totals.get('batched_joins', 0)} batched joins)")
        if self.planner_cache:
            hits = self.planner_cache.get("hits", 0)
            misses = self.planner_cache.get("misses", 0)
            solves = hits + misses
            ratio = (hits / solves) if solves else 0.0
            lines.append(
                f"planner cache: {hits} hits / {misses} misses "
                f"({100.0 * ratio:.0f}% hit rate)")
            probes_warm = self.planner_cache.get("probes_warm", 0)
            probes_cold = self.planner_cache.get("probes_cold", 0)
            lines.append(
                f"planner probes: {probes_cold} cold / {probes_warm} warm "
                f"({self.planner_cache.get('solves_cold', 0)} cold / "
                f"{self.planner_cache.get('solves_warm', 0)} warm solves)")
        return "\n".join(lines)

    def dashboard(self) -> str:
        return render_dashboard(self.metrics)


class ServerRuntime:
    """One scenario's event-driven run loop."""

    def __init__(self, config: RuntimeConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._sim = Simulator()
        self._events: list[SessionEvent] = []
        self._metrics = MetricsLog()
        self._migrations: list[MigrationRecord] = []
        self._sessions: dict[int, Session] = {}
        self._next_id = 0
        self._mode = config.configuration
        self._policy: CachePolicy | None = None
        self._k_active = config.params.k
        self._rate_factor = 1.0  # surviving MEMS media-rate multiplier
        self._degraded_since: float | None = None
        self._degraded_time = 0.0
        self._arrivals_total = 0
        self._rejects_total = 0
        # A private planner so the cache counters describe this run only
        # (the epoch/metrics/recovery loops all solve through it).
        self._planner = Planner()
        require(config.device is not None,
                "RuntimeConfig validated without a MEMS device")
        self._bank: MemsBank | None = MemsBank(
            config.device, config.params.k, BankPolicy.ROUND_ROBIN)

        workload = config.workload
        self._placement: AdaptivePlacement | None = None
        self._prefix: PrefixPlacement | None = None
        self._prefix_decision: PrefixDecision | None = None
        self._batcher: MulticastBatcher | None = None
        if self._mode == "cache":
            self._placement = AdaptivePlacement(
                workload.n_titles, decay=config.placement_decay,
                prior_weights=workload.current_weights(),
                planner=self._planner)
            decision = self._placement.replan(self._degraded_params(), 0.0,
                                              dram_budget=config.dram_budget)
            self._policy = decision.policy
            self._record_migration(0.0, decision)
            self._controller = AdmissionController(
                self._degraded_params(), config.dram_budget,
                configuration="cache", policy=decision.policy,
                popularity=decision.popularity, planner=self._planner)
        elif self._mode == "prefix":
            self._batcher = MulticastBatcher()
            self._prefix = PrefixPlacement(
                workload.n_titles, decay=config.placement_decay,
                prior_weights=workload.current_weights(),
                safety=config.prefix_safety,
                floor_seconds=config.prefix_floor,
                window_cap=config.batch_window,
                planner=self._planner)
            decision = self._prefix.replan(self._degraded_params(), 0.0,
                                           dram_budget=config.dram_budget)
            self._policy = decision.policy
            self._prefix_decision = decision
            self._record_migration(0.0, decision)
            self._controller = AdmissionController(
                self._degraded_params(), config.dram_budget,
                spec=decision.spec, planner=self._planner)
        else:
            self._controller = AdmissionController(
                self._degraded_params(), config.dram_budget,
                configuration=self._mode, planner=self._planner)

    # -- Accessors (the service facade drives the engine through these) ------

    @property
    def sim(self) -> Simulator:
        """The run's event calendar (shared with the service facade)."""
        return self._sim

    @property
    def rng(self) -> np.random.Generator:
        """The run's single seeded generator."""
        return self._rng

    @property
    def mode(self) -> str:
        """Active configuration mode ("none"/"buffer"/"cache"/"prefix")."""
        return self._mode

    @property
    def controller(self) -> AdmissionController:
        """The live admission controller."""
        return self._controller

    @property
    def planner(self) -> Planner:
        """The run's private planner."""
        return self._planner

    @property
    def active_sessions(self) -> int:
        """Sessions currently playing."""
        return len(self._sessions)

    @property
    def policy(self) -> CachePolicy | None:
        """The placement policy of the last plan (None in static modes)."""
        return self._policy

    @property
    def rejects_total(self) -> int:
        """Arrivals the engine itself has rejected so far."""
        return self._rejects_total

    @property
    def k_active(self) -> int:
        """Surviving MEMS devices."""
        return self._k_active

    # -- Geometry ------------------------------------------------------------

    def _degraded_params(self) -> SystemParameters:
        """Healthy parameters projected onto the surviving bank."""
        params = self.config.params
        k = max(self._k_active, 1)
        return params.replace(k=k, r_mems=params.r_mems * self._rate_factor)

    def _served_by(self, title: int) -> str:
        if self._mode == "cache":
            require(self._placement is not None,
                    "cache mode runs without an AdaptivePlacement")
            return ("cache" if title in set(self._placement.cached_titles)
                    else "disk")
        return "buffer" if self._mode == "buffer" else "disk"

    # -- Event handlers ------------------------------------------------------

    def _schedule_arrival(self, sim: Simulator) -> None:
        delay = self.config.workload.next_interarrival(self._rng)
        sim.after(delay, self._on_arrival, "arrival")

    def _on_arrival(self, sim: Simulator) -> None:
        self.handle_arrival(sim)
        self._schedule_arrival(sim)

    def handle_arrival(self, sim: Simulator,
                       title: int | None = None) -> ArrivalOutcome:
        """Process one arrival: observe, admit or reject, schedule exit.

        The engine's admission operation: the legacy run loop calls it
        from the Poisson arrival chain, the service facade calls it for
        each :meth:`repro.service.MediaService.admit`.  When ``title``
        is None the workload draws one (the next draw of the seeded
        stream, so both paths consume the RNG identically).
        """
        workload = self.config.workload
        if title is None:
            title = workload.next_title(self._rng)
        self._arrivals_total += 1
        self._metrics.count("arrivals")
        if self._placement is not None:
            self._placement.observe(title)
        if self._prefix is not None:
            self._prefix.observe(title)
        if self._mode == "prefix":
            return self._admit_prefix(sim, title)
        decision = self._controller.try_admit()
        if decision.admitted:
            session = Session(session_id=self._next_id, title=title,
                              arrival_time=sim.now,
                              holding_time=workload.next_holding(self._rng),
                              served_by=self._served_by(title))
            self._next_id += 1
            self._sessions[session.session_id] = session
            self._metrics.count("admits")
            self._events.append(SessionEvent(
                time=sim.now, kind=SessionEventKind.ADMIT,
                session_id=session.session_id, title=title,
                served_by=session.served_by))
            sim.after(session.holding_time, self._make_departure(session),
                      "departure")
            return ArrivalOutcome(admitted=True, title=title,
                                  session=session,
                                  served_by=session.served_by)
        self._rejects_total += 1
        self._metrics.count("rejects")
        self._events.append(SessionEvent(
            time=sim.now, kind=SessionEventKind.REJECT,
            session_id=-1, title=title, reason=decision.reason))
        return ArrivalOutcome(admitted=False, title=title,
                              reason=decision.reason)

    def _admit_prefix(self, sim: Simulator, title: int) -> ArrivalOutcome:
        """Prefix-mode admission: join an open stream or charge a new one.

        A same-title arrival inside an open stream's batching window
        rides that stream for free — no admission check, no new IO.
        Only a brand-new stream goes through the controller, which
        therefore counts *IO streams*, the unit the planner's prefix
        demand model is stated in.
        """
        workload = self.config.workload
        require(self._prefix is not None and self._batcher is not None,
                "prefix admission outside prefix mode")
        shared = self._batcher.joinable(title, sim.now)
        if shared is not None:
            session = Session(session_id=self._next_id, title=title,
                              arrival_time=sim.now,
                              holding_time=workload.next_holding(self._rng),
                              served_by="shared",
                              stream_id=shared.stream_id)
            self._next_id += 1
            self._sessions[session.session_id] = session
            self._batcher.join(shared, session.session_id)
            self._metrics.count("admits")
            self._metrics.count("batched_joins")
            self._events.append(SessionEvent(
                time=sim.now, kind=SessionEventKind.ADMIT,
                session_id=session.session_id, title=title,
                served_by=session.served_by))
            sim.after(session.holding_time, self._make_departure(session),
                      "departure")
            return ArrivalOutcome(admitted=True, title=title,
                                  session=session,
                                  served_by=session.served_by, batched=True)
        decision = self._controller.try_admit()
        if decision.admitted:
            served_by = ("prefix" if self._prefix.is_resident(title)
                         else "disk")
            session = Session(session_id=self._next_id, title=title,
                              arrival_time=sim.now,
                              holding_time=workload.next_holding(self._rng),
                              served_by=served_by)
            self._next_id += 1
            stream = self._batcher.open(
                title, sim.now, self._prefix.window_seconds(title),
                session.session_id)
            session.stream_id = stream.stream_id
            self._sessions[session.session_id] = session
            self._metrics.count("admits")
            self._metrics.count("streams_opened")
            self._events.append(SessionEvent(
                time=sim.now, kind=SessionEventKind.ADMIT,
                session_id=session.session_id, title=title,
                served_by=session.served_by))
            sim.after(session.holding_time, self._make_departure(session),
                      "departure")
            return ArrivalOutcome(admitted=True, title=title,
                                  session=session,
                                  served_by=session.served_by)
        self._rejects_total += 1
        self._metrics.count("rejects")
        self._events.append(SessionEvent(
            time=sim.now, kind=SessionEventKind.REJECT,
            session_id=-1, title=title, reason=decision.reason))
        return ArrivalOutcome(admitted=False, title=title,
                              reason=decision.reason)

    def _complete_departure(self, sim: Simulator, session: Session) -> None:
        """Release the departed session's slot and log the exit."""
        if session.stream_id is not None:
            # Shared stream: the IO slot frees only when the last
            # rider leaves.
            if (self._batcher is not None
                    and self._batcher.has_stream(session.stream_id)):
                if self._batcher.leave(session.stream_id,
                                       session.session_id):
                    self._controller.release(1)
                    self._metrics.count("streams_closed")
        else:
            self._controller.release(1)
        self._metrics.count("departures")
        self._events.append(SessionEvent(
            time=sim.now, kind=SessionEventKind.DEPART,
            session_id=session.session_id, title=session.title,
            served_by=session.served_by))

    def _make_departure(self, session: Session):
        def depart(sim: Simulator) -> None:
            # The session may have been shed by a failure already.
            if self._sessions.pop(session.session_id, None) is None:
                return
            self._complete_departure(sim, session)

        return depart

    def close_session(self, sim: Simulator, session_id: int) -> Session | None:
        """Tear one session down early (the service ``teardown`` op).

        Accounted exactly like a natural departure — the slot is
        released and a ``DEPART`` event is logged — so the engine's
        scheduled departure callback later finds the session gone and
        no-ops.  Returns the closed session, or None if the id is not
        live.
        """
        session = self._sessions.pop(session_id, None)
        if session is None:
            return None
        self._complete_departure(sim, session)
        return session

    def _shed_sessions(self, sim: Simulator, n_drop: int,
                       reason: str) -> None:
        """Drop the ``n_drop`` newest sessions (least watched first)."""
        victims = list(self._sessions.values())[::-1][:n_drop]
        for session in victims:
            del self._sessions[session.session_id]
            self._controller.release(1)
            self._metrics.count("drops")
            self._events.append(SessionEvent(
                time=sim.now, kind=SessionEventKind.DROP,
                session_id=session.session_id, title=session.title,
                served_by=session.served_by, reason=reason))

    def _shed_streams(self, sim: Simulator, n_drop: int,
                      reason: str) -> None:
        """Close the ``n_drop`` newest IO streams and drop their riders."""
        require(self._batcher is not None,
                "stream shedding outside prefix mode")
        for stream in self._batcher.drop_newest(n_drop):
            self._controller.release(1)
            self._metrics.count("streams_closed")
            for session_id in stream.session_ids:
                session = self._sessions.pop(session_id, None)
                if session is None:  # pragma: no cover - defensive
                    continue
                self._metrics.count("drops")
                self._events.append(SessionEvent(
                    time=sim.now, kind=SessionEventKind.DROP,
                    session_id=session.session_id, title=session.title,
                    served_by=session.served_by, reason=reason))

    def _record_migration(self, time: float, decision) -> None:
        if decision.migrations_in or decision.migrations_out:
            self._metrics.count("migrations_in", len(decision.migrations_in))
            self._metrics.count("migrations_out",
                                len(decision.migrations_out))
            self._migrations.append(MigrationRecord(
                time=time, policy=decision.policy.value,
                migrations_in=decision.migrations_in,
                migrations_out=decision.migrations_out,
                n_cached=len(decision.cached_titles)))

    def _replan(self, sim: Simulator, *, reason: str) -> None:
        """Re-rank, migrate, and swap the admission demand model."""
        require(self._placement is not None,
                "replan requested outside cache mode")
        self._metrics.count("replans")
        decision = self._placement.replan(
            self._degraded_params(), float(len(self._sessions)),
            dram_budget=self.config.dram_budget)
        self._policy = decision.policy
        self._record_migration(sim.now, decision)
        self._controller.reconfigure(params=self._degraded_params(),
                                     configuration="cache",
                                     policy=decision.policy,
                                     popularity=decision.popularity)
        # Live sessions follow their titles across the migration.
        cached = set(decision.cached_titles)
        for session in self._sessions.values():
            session.served_by = ("cache" if session.title in cached
                                 else "disk")
        # The observed popularity may be harsher than what the old
        # population was admitted under; shed to the new capacity.
        capacity = self._controller.capacity()
        if len(self._sessions) > capacity:
            self._shed_sessions(sim, len(self._sessions) - capacity, reason)

    def _replan_prefix(self, sim: Simulator, *, reason: str) -> None:
        """Re-allocate prefixes and swap the admission spec (in streams)."""
        require(self._prefix is not None and self._batcher is not None,
                "prefix replan outside prefix mode")
        self._metrics.count("replans")
        decision = self._prefix.replan(
            self._degraded_params(), float(self._batcher.active_streams),
            dram_budget=self.config.dram_budget)
        self._policy = decision.policy
        self._prefix_decision = decision
        self._record_migration(sim.now, decision)
        self._controller.reconfigure(params=self._degraded_params(),
                                     spec=decision.spec)
        # Stream openers follow their titles across the migration
        # (riders keep "shared" — their IO is the opener's).
        for session in self._sessions.values():
            if session.served_by != "shared":
                session.served_by = (
                    "prefix" if self._prefix.is_resident(session.title)
                    else "disk")
        capacity = self._controller.capacity()
        if self._batcher.active_streams > capacity:
            self._shed_streams(
                sim, self._batcher.active_streams - capacity, reason)

    def _on_epoch(self, sim: Simulator) -> None:
        self.run_epoch(sim)

    def run_epoch(self, sim: Simulator) -> bool:
        """Run one epoch re-plan now; True when a re-plan happened.

        The replan operation of the control plane: the legacy loop
        fires it on the epoch timer, the service facade fires it off
        the request path (possibly delayed by ``replan_latency``).
        Static modes ("none"/"buffer") have nothing to re-plan.
        """
        if self._mode == "cache":
            self._replan(sim, reason="epoch re-plan over capacity")
            return True
        if self._mode == "prefix":
            self._replan_prefix(sim, reason="epoch re-plan over capacity")
            return True
        return False

    def _fail_prefix(self, sim: Simulator) -> None:
        """Degrade the prefix mode after a bank failure.

        While any device survives the normal epoch machinery absorbs
        the hit: re-plan against the shrunken bank and shed whole
        streams over the new capacity.  Total bank loss collapses the
        mode — no prefixes means no instant-start batching, so every
        surviving session needs its own direct-disk stream and the
        runtime falls back to a rebuilt ``"none"`` controller.
        """
        require(self._prefix is not None and self._batcher is not None,
                "prefix failure handling outside prefix mode")
        if self._k_active >= 1:
            self._replan_prefix(sim, reason="device failure")
            return
        from repro.core.popularity import EmpiricalPopularity

        popularity = EmpiricalPopularity.from_counts(self._prefix.scores())
        plan = plan_recovery(self.config.params, self.config.dram_budget,
                             len(self._sessions), popularity,
                             k_active=0, r_mems_factor=self._rate_factor,
                             planner=self._planner)
        if plan.n_dropped:
            # Shed sessions directly: the old controller counted IO
            # streams, so its slots are not session slots to release.
            victims = list(self._sessions.values())[::-1][:plan.n_dropped]
            for session in victims:
                del self._sessions[session.session_id]
                self._metrics.count("drops")
                self._events.append(SessionEvent(
                    time=sim.now, kind=SessionEventKind.DROP,
                    session_id=session.session_id, title=session.title,
                    served_by=session.served_by, reason="device failure"))
        # Batching collapses with the bank: every survivor becomes its
        # own direct-disk stream.  A fresh (empty) batcher keeps the
        # live gauges at zero; the cumulative fan-out counters carry
        # over so the end-of-run ratio still covers the whole run.
        self._batcher.dissolve()
        fresh = MulticastBatcher()
        fresh.sessions_total = self._batcher.sessions_total
        fresh.streams_total = self._batcher.streams_total
        self._batcher = fresh
        for session in self._sessions.values():
            session.stream_id = None
            session.served_by = "disk"
        self._prefix = None
        self._prefix_decision = None
        self._mode = plan.mode
        self._policy = plan.policy
        self._controller = AdmissionController(
            self._degraded_params(), self.config.dram_budget,
            configuration=plan.mode, planner=self._planner)
        for _ in self._sessions:
            require(self._controller.try_admit().admitted,
                    "recovery plan under-counted the surviving sessions")

    def _make_failure(self, event: FailureEvent):
        def fail(sim: Simulator) -> None:
            self.apply_failure(sim, event)

        return fail

    def apply_failure(self, sim: Simulator, event: FailureEvent) -> None:
        """Degrade the bank per ``event`` and re-plan the survivors."""
        self._metrics.count("failures")
        if event.kind is FailureKind.DEVICE_LOSS:
            self._k_active = max(0, self._k_active - event.count)
        else:
            self._rate_factor *= event.factor
        if self._mode == "prefix":
            self._fail_prefix(sim)
            self._bank = (None if self._k_active < 1 else MemsBank(
                self.config.device, self._k_active,
                BankPolicy.ROUND_ROBIN))
            if self._degraded_since is None:
                self._degraded_since = sim.now
            return
        popularity = self.config.workload.popularity
        if self._placement is not None:
            # Judge recovery against the observed traffic, not the
            # configured distribution.
            from repro.core.popularity import EmpiricalPopularity

            popularity = EmpiricalPopularity.from_counts(
                self._placement.scores())
        plan = plan_recovery(self.config.params,
                             self.config.dram_budget,
                             len(self._sessions), popularity,
                             k_active=self._k_active,
                             r_mems_factor=self._rate_factor,
                             planner=self._planner)
        if plan.n_dropped:
            self._shed_sessions(sim, plan.n_dropped, "device failure")
        previous_mode = self._mode
        self._mode = plan.mode
        self._policy = plan.policy
        if plan.mode == "cache":
            self._controller.reconfigure(
                params=self._degraded_params(), configuration="cache",
                policy=plan.policy, popularity=popularity)
            # Shrink the cached set to the surviving capacity now
            # rather than waiting for the next epoch tick.
            self._replan(sim, reason="device failure")
        else:
            self._controller.reconfigure(
                params=self._degraded_params(),
                configuration=plan.mode)
            if previous_mode == "cache":
                for session in self._sessions.values():
                    session.served_by = self._served_by(session.title)
        self._bank = (None if self._k_active < 1 else MemsBank(
            self.config.device, self._k_active, BankPolicy.ROUND_ROBIN))
        if self._degraded_since is None:
            self._degraded_since = sim.now

    def apply_drift(self, sim: Simulator, event: DriftEvent) -> None:
        """Rotate the title ranking (popularity drift)."""
        self.config.workload.rotate_popularity(event.shift)

    def apply_surge(self, sim: Simulator, event: SurgeEvent) -> None:
        """Scale the arrival rate (flash crowd)."""
        self.config.workload.scale_rate(event.factor)

    def apply_focus(self, sim: Simulator, event: FocusEvent) -> None:
        """Concentrate arrivals onto one title (focused crowd)."""
        self.config.workload.focus_title(event.title, event.weight)

    def _make_drift(self, event: DriftEvent):
        def drift(sim: Simulator) -> None:
            self.apply_drift(sim, event)

        return drift

    def _make_surge(self, event: SurgeEvent):
        def surge(sim: Simulator) -> None:
            self.apply_surge(sim, event)

        return surge

    def _make_focus(self, event: FocusEvent):
        def focus(sim: Simulator) -> None:
            self.apply_focus(sim, event)

        return focus

    # -- Gauges --------------------------------------------------------------

    def _device_utilization(self) -> float:
        """Load fraction of the bottleneck device class."""
        params = self.config.params
        n = len(self._sessions)
        disk_load = n * params.bit_rate / params.r_disk
        if self._bank is None:
            return disk_load
        bank_rate = self._bank.aggregate_bandwidth * self._rate_factor
        if self._mode == "prefix":
            require(self._batcher is not None
                    and self._prefix_decision is not None,
                    "prefix mode runs without a batcher/decision")
            # Fan-out means the devices see IO streams, not sessions;
            # the prefix fraction splits each stream's bytes.
            n_io = float(self._batcher.active_streams)
            h = self._prefix_decision.mems_fraction
            disk_load = n_io * (1.0 - h) * params.bit_rate / params.r_disk
            return max(disk_load, n_io * h * params.bit_rate / bank_rate)
        if self._mode == "cache":
            n_cache = sum(1 for s in self._sessions.values()
                          if s.served_by == "cache")
            disk_load = (n - n_cache) * params.bit_rate / params.r_disk
            return max(disk_load, n_cache * params.bit_rate / bank_rate)
        if self._mode == "buffer":
            # Buffered traffic crosses the bank twice (write + read).
            return max(disk_load, 2 * n * params.bit_rate / bank_rate)
        return disk_load

    def seal_metrics(self, sim: Simulator) -> None:
        """Close one reporting interval now (the service metrics op)."""
        self._on_metrics(sim)

    def _on_metrics(self, sim: Simulator) -> None:
        workload = self.config.workload
        n = len(self._sessions)
        n_cache = sum(1 for s in self._sessions.values()
                      if s.served_by == "cache")
        try:
            dram = self._controller.dram_required()
        except (AdmissionError, CapacityError):  # pragma: no cover
            dram = float("inf")
        capacity = self._controller.capacity()
        degraded = (self._mode != self.config.configuration
                    or self._k_active < self.config.params.k
                    or self._rate_factor < 1.0)
        degraded_time = self._degraded_time
        if self._degraded_since is not None:
            degraded_time += sim.now - self._degraded_since
        gauges = {
            "active_sessions": float(n),
            "cache_sessions": float(n_cache),
            "cache_hit_ratio": (n_cache / n) if n else 0.0,
            "dram_required": dram,
            "dram_occupancy": (dram / self.config.dram_budget
                               if self.config.dram_budget else 0.0),
            "device_utilization": self._device_utilization(),
            "capacity": float(capacity),
            "blocking_probability": (self._rejects_total
                                     / self._arrivals_total
                                     if self._arrivals_total else 0.0),
            "erlang_b_prediction": predicted_blocking(
                workload.arrival_rate * workload.rate_factor,
                workload.mean_holding, capacity),
            "k_active": float(self._k_active),
            "degraded": 1.0 if degraded else 0.0,
            "degraded_time": degraded_time,
        }
        if self._batcher is not None:
            streams = self._batcher.active_streams
            h = (self._prefix_decision.mems_fraction
                 if self._prefix_decision is not None else 0.0)
            allocation = (self._prefix.allocation
                          if self._prefix is not None else None)
            mems_bytes = (allocation.total_bytes
                          if allocation is not None else 0.0)
            gauges["io_streams"] = float(streams)
            gauges["fanout_ratio"] = (n / streams) if streams else 0.0
            gauges["fanout_cumulative"] = self._batcher.fanout
            gauges["prefix_hit_rate"] = h
            gauges["prefix_resident_titles"] = float(
                len(self._prefix.resident_titles)
                if self._prefix is not None else 0)
            gauges["sessions_per_mems_byte"] = (
                n / mems_bytes if mems_bytes > 0 else 0.0)
            gauges["tail_disk_load"] = (
                streams * (1.0 - h) * self.config.params.bit_rate
                / self.config.params.r_disk)
        stats = self._planner.stats()
        solves = stats["hits"] + stats["misses"]
        gauges["planner_cache_hits"] = float(stats["hits"])
        gauges["planner_cache_misses"] = float(stats["misses"])
        gauges["planner_cache_hit_ratio"] = (
            stats["hits"] / solves if solves else 0.0)
        gauges["planner_probe_cold"] = float(stats["probes_cold"])
        gauges["planner_probe_warm"] = float(stats["probes_warm"])
        gauges["planner_probe_total"] = float(stats["probes_cold"]
                                              + stats["probes_warm"])
        self._metrics.close_interval(sim.now, gauges)

    # -- Run loop ------------------------------------------------------------

    def run(self) -> RuntimeResult:
        config = self.config
        sim = self._sim
        self._schedule_arrival(sim)
        sim.every(config.epoch, self._on_epoch, "epoch")
        sim.every(config.metrics_interval, self._on_metrics, "metrics")
        for failure in sorted(config.failures, key=lambda e: e.time):
            sim.at(failure.time, self._make_failure(failure), "failure")
        for drift in sorted(config.drifts, key=lambda e: e.time):
            sim.at(drift.time, self._make_drift(drift), "drift")
        for surge in sorted(config.surges, key=lambda e: e.time):
            sim.at(surge.time, self._make_surge(surge), "surge")
        for focus in sorted(config.focuses, key=lambda e: e.time):
            sim.at(focus.time, self._make_focus(focus), "focus")
        sim.run(until=config.horizon)
        return self.finalize()

    def finalize(self) -> RuntimeResult:
        """Seal the run after the horizon and build the result.

        Shared by the legacy :meth:`run` loop and the service traffic
        programs, so both paths produce the result through identical
        code (the parity harness compares the JSON byte for byte).
        """
        config = self.config
        sim = self._sim
        if (not self._metrics.snapshots
                or self._metrics.snapshots[-1].t_end < config.horizon):
            self._on_metrics(sim)
        if self._degraded_since is not None:
            self._degraded_time += config.horizon - self._degraded_since
            self._degraded_since = None
        try:
            final_dram = self._controller.dram_required()
        except (AdmissionError, CapacityError):  # pragma: no cover
            final_dram = float("inf")
        notes = {"offered_load": config.workload.offered_load,
                 "seed": float(config.seed)}
        if self._batcher is not None:
            notes["fanout_sessions_per_stream"] = self._batcher.fanout
            notes["streams_opened"] = float(self._batcher.streams_total)
            notes["batched_sessions"] = float(self._batcher.sessions_total)
        return RuntimeResult(
            events=self._events,
            metrics=self._metrics,
            migrations=self._migrations,
            final_mode=self._mode,
            final_policy=self._policy.value if self._policy else None,
            k_active=self._k_active,
            final_capacity=self._controller.capacity(),
            final_dram_required=final_dram,
            dram_budget=config.dram_budget,
            degraded_time=self._degraded_time,
            horizon=config.horizon,
            events_executed=sim.events_executed,
            notes=notes,
            planner_cache=self._planner.stats())


def run_runtime(config: RuntimeConfig) -> RuntimeResult:
    """Convenience: build and run one scenario."""
    return ServerRuntime(config).run()
