"""Failure injection and degraded-mode recovery.

Mid-run, a MEMS device can die outright (the bank shrinks to ``k-1``
devices, losing bandwidth and — for striping — capacity) or degrade
(its media rate drops by a factor, e.g. thermal throttling).  The
runtime must answer, *online*: which server configuration is still
feasible, and how many of the live sessions survive it?

:func:`plan_recovery` searches the configuration ladder in preference
order — replicated cache, striped cache, MEMS buffer, plain
disk-to-DRAM — and picks the first rung that carries the whole live
population, or failing that the rung that saves the most sessions.
Sessions beyond the surviving capacity are shed newest-first (they have
watched the least), which the runtime reports as ``DROP`` events.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.cache_model import CachePolicy
from repro.core.parameters import SystemParameters
from repro.core.popularity import PopularityDistribution
from repro.errors import AdmissionError, CapacityError, ConfigurationError
from repro.planner.solver import Planner
from repro.scheduling.admission import AdmissionController


class FailureKind(enum.Enum):
    """What goes wrong with the MEMS bank."""

    #: A device drops out of the bank entirely.
    DEVICE_LOSS = "device_loss"
    #: All surviving devices' media rate is scaled by ``factor``.
    BANDWIDTH_DEGRADE = "bandwidth_degrade"


@dataclass(frozen=True)
class FailureEvent:
    """A scheduled fault."""

    time: float
    kind: FailureKind
    #: Devices lost (DEVICE_LOSS).
    count: int = 1
    #: Surviving media-rate multiplier (BANDWIDTH_DEGRADE).
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigurationError(f"time must be >= 0, got {self.time!r}")
        if self.kind is FailureKind.DEVICE_LOSS and self.count < 1:
            raise ConfigurationError(
                f"count must be >= 1 for a device loss, got {self.count!r}")
        if self.kind is FailureKind.BANDWIDTH_DEGRADE and not (
                0 < self.factor < 1):
            raise ConfigurationError(
                f"degrade factor must be in (0, 1), got {self.factor!r}")


@dataclass(frozen=True)
class RecoveryPlan:
    """A feasible (possibly degraded) configuration after a fault."""

    #: "cache", "buffer", or "none" (direct disk-to-DRAM path).
    mode: str
    policy: CachePolicy | None
    #: Surviving MEMS devices (0 means the bank is gone).
    k_active: int
    #: Largest population the degraded configuration admits.
    capacity: int
    #: Live sessions that must be shed (0 when everyone survives).
    n_dropped: int
    #: DRAM demand at the surviving population, bytes.
    dram_required: float

    @property
    def degraded(self) -> bool:
        """True when the plan is anything but a healthy cache."""
        return self.mode != "cache" or self.n_dropped > 0


def plan_recovery(params: SystemParameters, dram_budget: float,
                  n_active: int, popularity: PopularityDistribution, *,
                  k_active: int, r_mems_factor: float = 1.0,
                  planner: Planner | None = None) -> RecoveryPlan:
    """Find the best surviving configuration for ``n_active`` sessions.

    ``params`` carries the healthy geometry; ``k_active`` and
    ``r_mems_factor`` describe what the faults left standing.  The
    direct-disk rung is always feasible to *evaluate* (its capacity may
    still be below the population), so a plan is always returned.  Every
    rung solves through ``planner`` (the shared default when None), so
    repeated faults against the same surviving geometry replay their
    capacity searches from the planner's cache.
    """
    if n_active < 0:
        raise ConfigurationError(
            f"n_active must be >= 0, got {n_active!r}")
    if k_active < 0:
        raise ConfigurationError(
            f"k_active must be >= 0, got {k_active!r}")
    if not 0 < r_mems_factor <= 1:
        raise ConfigurationError(
            f"r_mems_factor must be in (0, 1], got {r_mems_factor!r}")

    candidates: list[tuple[str, CachePolicy | None, SystemParameters]] = []
    if k_active >= 1:
        degraded = params.replace(k=k_active,
                                  r_mems=params.r_mems * r_mems_factor)
        candidates.append(("cache", CachePolicy.REPLICATED, degraded))
        candidates.append(("cache", CachePolicy.STRIPED, degraded))
        candidates.append(("buffer", None, degraded))
    candidates.append(("none", None, params))

    best: RecoveryPlan | None = None
    # Each rung's capacity seeds the next rung's search: the ladder
    # shares the device geometry and the budget, so successive rungs'
    # capacities are close and the hint saves most of the bisection
    # (the answer is bit-identical either way).
    hint: int | None = None
    for mode, policy, mode_params in candidates:
        controller = AdmissionController(
            mode_params, dram_budget, configuration=mode, policy=policy,
            popularity=popularity if mode == "cache" else None,
            planner=planner)
        capacity = controller.capacity(hint=hint)
        hint = capacity
        survivors = min(capacity, n_active)
        try:
            dram = controller.dram_required(survivors)
        except (AdmissionError, CapacityError):  # pragma: no cover
            continue
        plan = RecoveryPlan(mode=mode, policy=policy,
                            k_active=k_active if mode != "none" else k_active,
                            capacity=capacity,
                            n_dropped=n_active - survivors,
                            dram_required=dram)
        if plan.n_dropped == 0:
            return plan
        if best is None or plan.capacity > best.capacity:
            best = plan
    if best is None:  # the direct-disk rung always evaluates
        raise RuntimeError("recovery ladder produced no plan: even the "
                           "direct-disk rung failed to evaluate")
    return best
