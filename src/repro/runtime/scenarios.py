"""Named runtime scenarios for the CLI and the test suite.

Each scenario is a reproducible :class:`~repro.runtime.runtime.RuntimeConfig`
factory: same name + seed + horizon => identical run (admissions,
migrations, drops, and metrics all derive from one seeded generator).

The content library is modelled as 100 equal-sized titles on a 200 GB
slice of the disk, so the ``k = 2`` G3 bank caches the top 5-10% of the
catalogue depending on policy — enough for the adaptive placement to
matter without trivialising the disk path.

The VoD prefix-mode scenarios use *underscored* names (``flash_crowd``,
``diurnal_drift``, ``long_tail``); the older hyphenated ``flash-crowd``
is a plain-disk rate surge and coexists — they answer different
questions (loss-system blocking vs. multicast fan-out economics).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.parameters import SystemParameters
from repro.core.popularity import ZipfPopularity
from repro.errors import ConfigurationError
from repro.runtime.failures import FailureEvent, FailureKind
from repro.runtime.runtime import (
    DriftEvent,
    FocusEvent,
    RuntimeConfig,
    RuntimeResult,
    SurgeEvent,
    run_runtime,
)
from repro.runtime.sessions import SessionWorkload
from repro.units import GB, KB, MB

#: Library size: 100 titles on a 200 GB disk slice.
_N_TITLES = 100
_LIBRARY_BYTES = 200 * GB
_BIT_RATE = 500 * KB


def _disk_params() -> SystemParameters:
    return SystemParameters.table3_default(n_streams=1, bit_rate=_BIT_RATE,
                                           k=1)


def _cache_params() -> SystemParameters:
    return SystemParameters.table3_default(
        n_streams=1, bit_rate=_BIT_RATE, k=2).replace(
            size_disk=_LIBRARY_BYTES)


def _zipf() -> ZipfPopularity:
    return ZipfPopularity(alpha=1.0, n_titles=_N_TITLES)


def steady_disk(*, seed: int = 0,
                horizon: float = 30_000.0) -> RuntimeConfig:
    """Plain disk-to-DRAM loss system near its admission limit.

    Fixed capacity, no adaptation — the run that validates the
    empirical blocking probability against Erlang-B.
    """
    return RuntimeConfig(
        params=_disk_params(), dram_budget=50 * MB,
        workload=SessionWorkload(arrival_rate=160 / 600.0,
                                 mean_holding=600.0, n_titles=_N_TITLES,
                                 popularity=_zipf()),
        horizon=horizon, epoch=3_600.0, metrics_interval=600.0,
        configuration="none", seed=seed)


def adaptive_cache(*, seed: int = 0,
                   horizon: float = 6_000.0) -> RuntimeConfig:
    """MEMS cache chasing a drifting Zipf popularity.

    The title ranking rotates twice mid-run; each epoch the placement
    re-ranks from observed admissions and migrates the cached set.
    """
    return RuntimeConfig(
        params=_cache_params(), dram_budget=50 * MB,
        workload=SessionWorkload(arrival_rate=150 / 1_200.0,
                                 mean_holding=1_200.0, n_titles=_N_TITLES,
                                 popularity=_zipf()),
        horizon=horizon, epoch=300.0, metrics_interval=120.0,
        configuration="cache",
        drifts=(DriftEvent(time=horizon / 3, shift=25),
                DriftEvent(time=2 * horizon / 3, shift=25)),
        seed=seed)


def device_failure(*, seed: int = 0,
                   horizon: float = 6_000.0) -> RuntimeConfig:
    """A MEMS device dies mid-run; the server re-plans degraded.

    The bank halves at the midpoint: the runtime recomputes a feasible
    configuration (smaller cache, or a fallback path), sheds sessions
    it can no longer carry, and keeps serving the rest.  The DRAM
    budget is deliberately tight so the run sits near capacity and the
    failure is consequential.
    """
    return RuntimeConfig(
        params=_cache_params(), dram_budget=10 * MB,
        workload=SessionWorkload(arrival_rate=170 / 1_200.0,
                                 mean_holding=1_200.0, n_titles=_N_TITLES,
                                 popularity=_zipf()),
        horizon=horizon, epoch=300.0, metrics_interval=120.0,
        configuration="cache",
        failures=(FailureEvent(time=horizon / 2,
                               kind=FailureKind.DEVICE_LOSS, count=1),),
        seed=seed)


def degraded_bandwidth(*, seed: int = 0,
                       horizon: float = 6_000.0) -> RuntimeConfig:
    """Both MEMS devices throttle to 40% media rate mid-run."""
    return RuntimeConfig(
        params=_cache_params(), dram_budget=50 * MB,
        workload=SessionWorkload(arrival_rate=150 / 1_200.0,
                                 mean_holding=1_200.0, n_titles=_N_TITLES,
                                 popularity=_zipf()),
        horizon=horizon, epoch=300.0, metrics_interval=120.0,
        configuration="cache",
        failures=(FailureEvent(time=horizon / 2,
                               kind=FailureKind.BANDWIDTH_DEGRADE,
                               factor=0.4),),
        seed=seed)


def flash_crowd(*, seed: int = 0,
                horizon: float = 30_000.0) -> RuntimeConfig:
    """Arrival rate surges 2.5x through the middle third of the run."""
    return RuntimeConfig(
        params=_disk_params(), dram_budget=50 * MB,
        workload=SessionWorkload(arrival_rate=120 / 600.0,
                                 mean_holding=600.0, n_titles=_N_TITLES,
                                 popularity=_zipf()),
        horizon=horizon, epoch=3_600.0, metrics_interval=600.0,
        configuration="none",
        surges=(SurgeEvent(time=horizon / 3, factor=2.5),
                SurgeEvent(time=2 * horizon / 3, factor=1.0)),
        seed=seed)


def vod_flash_crowd(*, seed: int = 0,
                    horizon: float = 6_000.0) -> RuntimeConfig:
    """A focused flash crowd hits the prefix-cached VoD server.

    Through the middle third the arrival rate jumps 6x *and* 70% of
    all arrivals collapse onto one title: the regime multicast batching
    exists for.  With the title's prefix resident, same-title arrivals
    inside the batching window join the open IO stream, so admitted
    sessions grow far past the IO-stream capacity that gates a
    whole-stream cache at the same MEMS/DRAM budgets — the fan-out
    economics the ``flash_crowd`` benchmark gate records.
    """
    return RuntimeConfig(
        params=_cache_params(), dram_budget=50 * MB,
        workload=SessionWorkload(arrival_rate=150 / 1_200.0,
                                 mean_holding=1_200.0, n_titles=_N_TITLES,
                                 popularity=_zipf()),
        horizon=horizon, epoch=300.0, metrics_interval=120.0,
        configuration="prefix",
        surges=(SurgeEvent(time=horizon / 3, factor=6.0),
                SurgeEvent(time=2 * horizon / 3, factor=1.0)),
        focuses=(FocusEvent(time=horizon / 3, title=7, weight=0.7),
                 FocusEvent(time=2 * horizon / 3, title=7, weight=0.0)),
        seed=seed)


def vod_diurnal_drift(*, seed: int = 0,
                      horizon: float = 6_000.0) -> RuntimeConfig:
    """A day/night cycle over a 400-title catalogue in prefix mode.

    Four times the catalogue size of the cache scenarios, so the bank
    cannot hold every prefix and the adaptive replacement must chase
    the head as the ranking rotates each quarter; the rate doubles for
    the "evening" and halves for the "night".
    """
    n_titles = 4 * _N_TITLES
    return RuntimeConfig(
        params=_cache_params(), dram_budget=50 * MB,
        workload=SessionWorkload(
            arrival_rate=150 / 1_200.0, mean_holding=1_200.0,
            n_titles=n_titles,
            popularity=ZipfPopularity(alpha=1.0, n_titles=n_titles)),
        horizon=horizon, epoch=300.0, metrics_interval=120.0,
        configuration="prefix",
        drifts=(DriftEvent(time=horizon / 4, shift=100),
                DriftEvent(time=horizon / 2, shift=100),
                DriftEvent(time=3 * horizon / 4, shift=100)),
        surges=(SurgeEvent(time=horizon / 4, factor=2.0),
                SurgeEvent(time=3 * horizon / 4, factor=0.5)),
        seed=seed)


def vod_long_tail(*, seed: int = 0,
                  horizon: float = 6_000.0) -> RuntimeConfig:
    """Weakly skewed 400-title catalogue: the prefix cache's worst case.

    With ``alpha = 0.4`` the head carries little probability mass, so
    resident prefixes buy few batched joins and the tail-disk load
    stays high — the contrast run for ``flash_crowd``.
    """
    n_titles = 4 * _N_TITLES
    return RuntimeConfig(
        params=_cache_params(), dram_budget=50 * MB,
        workload=SessionWorkload(
            arrival_rate=150 / 1_200.0, mean_holding=1_200.0,
            n_titles=n_titles,
            popularity=ZipfPopularity(alpha=0.4, n_titles=n_titles)),
        horizon=horizon, epoch=300.0, metrics_interval=120.0,
        configuration="prefix", seed=seed)


SCENARIOS: dict[str, Callable[..., RuntimeConfig]] = {
    "steady-disk": steady_disk,
    "adaptive-cache": adaptive_cache,
    "device-failure": device_failure,
    "degraded-bandwidth": degraded_bandwidth,
    "flash-crowd": flash_crowd,
    "flash_crowd": vod_flash_crowd,
    "diurnal_drift": vod_diurnal_drift,
    "long_tail": vod_long_tail,
}


def _require_known(name: str) -> Callable[..., RuntimeConfig]:
    """Look up a scenario factory; one canonical unknown-name error."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(SCENARIOS)}") from None


def build_scenario(name: str, *, seed: int = 0,
                   horizon: float | None = None) -> RuntimeConfig:
    """Instantiate a named scenario's configuration."""
    factory = _require_known(name)
    if horizon is None:
        return factory(seed=seed)
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be > 0, got {horizon!r}")
    return factory(seed=seed, horizon=horizon)


def run_scenario(name: str, *, seed: int = 0,
                 horizon: float | None = None) -> RuntimeResult:
    """Build and run a named scenario."""
    return run_runtime(build_scenario(name, seed=seed, horizon=horizon))


def _run_scenario_item(
        item: tuple[str, int, float | None]) -> RuntimeResult:
    """Worker: one named scenario (picklable; seed rides in the item)."""
    name, seed, horizon = item
    return run_scenario(name, seed=seed, horizon=horizon)


def run_scenario_batch(names: list[str] | None = None, *, seed: int = 0,
                       horizon: float | None = None,
                       jobs: int = 1) -> dict[str, RuntimeResult]:
    """Run several scenarios (default: all), optionally in parallel.

    Each scenario builds its own private planner and seeded generators
    from ``(name, seed, horizon)``, so fanning out over processes via
    :func:`repro.perf.parallel.sweep_map` returns exactly the results a
    serial loop would.
    """
    from repro.perf.parallel import sweep_map

    selected = list(SCENARIOS) if names is None else list(names)
    for name in selected:
        _require_known(name)
    items = [(name, seed, horizon) for name in selected]
    results = sweep_map(_run_scenario_item, items, jobs=jobs)
    return dict(zip(selected, results))
