"""Named runtime scenarios for the CLI and the test suite.

Each scenario is a reproducible :class:`~repro.runtime.runtime.RuntimeConfig`
factory: same name + seed + horizon => identical run (admissions,
migrations, drops, and metrics all derive from one seeded generator).

Since the control-plane refactor the scenario *contents* live
declaratively in :mod:`repro.service.scenarios` — one frozen
:class:`~repro.service.config.RuntimeConfig` tree per name, dumpable
to JSON via ``mems-repro runtime --emit-config``.  The factories here
are thin ``.to_legacy()`` shims kept for the imperative callers (and
for their docstrings, which ``mems-repro runtime list`` prints); the
parity harness in :mod:`repro.service.parity` holds the two paths to
byte-identical output.

The content library is modelled as 100 equal-sized titles on a 200 GB
slice of the disk, so the ``k = 2`` G3 bank caches the top 5-10% of the
catalogue depending on policy — enough for the adaptive placement to
matter without trivialising the disk path.

The VoD prefix-mode scenarios use *underscored* names (``flash_crowd``,
``diurnal_drift``, ``long_tail``); the older hyphenated ``flash-crowd``
is a plain-disk rate surge and coexists — they answer different
questions (loss-system blocking vs. multicast fan-out economics).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigurationError
from repro.runtime.runtime import RuntimeConfig, RuntimeResult, run_runtime


def _service_scenarios():
    """The declarative registry, imported lazily.

    ``repro.service.config`` itself imports the runtime layer (its
    tree compiles to the legacy config), so a module-level import here
    would close an import cycle through ``repro.runtime.__init__``.
    """
    from repro.service import scenarios

    return scenarios


def steady_disk(*, seed: int = 0,
                horizon: float = 30_000.0) -> RuntimeConfig:
    """Plain disk-to-DRAM loss system near its admission limit.

    Fixed capacity, no adaptation — the run that validates the
    empirical blocking probability against Erlang-B.
    """
    return _service_scenarios().steady_disk(
        seed=seed, horizon=horizon).to_legacy()


def adaptive_cache(*, seed: int = 0,
                   horizon: float = 6_000.0) -> RuntimeConfig:
    """MEMS cache chasing a drifting Zipf popularity.

    The title ranking rotates twice mid-run; each epoch the placement
    re-ranks from observed admissions and migrates the cached set.
    """
    return _service_scenarios().adaptive_cache(
        seed=seed, horizon=horizon).to_legacy()


def device_failure(*, seed: int = 0,
                   horizon: float = 6_000.0) -> RuntimeConfig:
    """A MEMS device dies mid-run; the server re-plans degraded.

    The bank halves at the midpoint: the runtime recomputes a feasible
    configuration (smaller cache, or a fallback path), sheds sessions
    it can no longer carry, and keeps serving the rest.  The DRAM
    budget is deliberately tight so the run sits near capacity and the
    failure is consequential.
    """
    return _service_scenarios().device_failure(
        seed=seed, horizon=horizon).to_legacy()


def degraded_bandwidth(*, seed: int = 0,
                       horizon: float = 6_000.0) -> RuntimeConfig:
    """Both MEMS devices throttle to 40% media rate mid-run."""
    return _service_scenarios().degraded_bandwidth(
        seed=seed, horizon=horizon).to_legacy()


def flash_crowd(*, seed: int = 0,
                horizon: float = 30_000.0) -> RuntimeConfig:
    """Arrival rate surges 2.5x through the middle third of the run."""
    return _service_scenarios().flash_crowd(
        seed=seed, horizon=horizon).to_legacy()


def overload(*, seed: int = 0, horizon: float = 30_000.0) -> RuntimeConfig:
    """Plain disk offered ~3x its admission capacity, start to finish.

    The saturation run: blocking dominates, and the service facade's
    backpressure governor spends the run in ``SHEDDING``.
    """
    return _service_scenarios().overload(
        seed=seed, horizon=horizon).to_legacy()


def vod_flash_crowd(*, seed: int = 0,
                    horizon: float = 6_000.0) -> RuntimeConfig:
    """A focused flash crowd hits the prefix-cached VoD server.

    Through the middle third the arrival rate jumps 6x *and* 70% of
    all arrivals collapse onto one title: the regime multicast batching
    exists for.  With the title's prefix resident, same-title arrivals
    inside the batching window join the open IO stream, so admitted
    sessions grow far past the IO-stream capacity that gates a
    whole-stream cache at the same MEMS/DRAM budgets — the fan-out
    economics the ``flash_crowd`` benchmark gate records.
    """
    return _service_scenarios().vod_flash_crowd(
        seed=seed, horizon=horizon).to_legacy()


def vod_diurnal_drift(*, seed: int = 0,
                      horizon: float = 6_000.0) -> RuntimeConfig:
    """A day/night cycle over a 400-title catalogue in prefix mode.

    Four times the catalogue size of the cache scenarios, so the bank
    cannot hold every prefix and the adaptive replacement must chase
    the head as the ranking rotates each quarter; the rate doubles for
    the "evening" and halves for the "night".
    """
    return _service_scenarios().vod_diurnal_drift(
        seed=seed, horizon=horizon).to_legacy()


def vod_long_tail(*, seed: int = 0,
                  horizon: float = 6_000.0) -> RuntimeConfig:
    """Weakly skewed 400-title catalogue: the prefix cache's worst case.

    With ``alpha = 0.4`` the head carries little probability mass, so
    resident prefixes buy few batched joins and the tail-disk load
    stays high — the contrast run for ``flash_crowd``.
    """
    return _service_scenarios().vod_long_tail(
        seed=seed, horizon=horizon).to_legacy()


SCENARIOS: dict[str, Callable[..., RuntimeConfig]] = {
    "steady-disk": steady_disk,
    "adaptive-cache": adaptive_cache,
    "device-failure": device_failure,
    "degraded-bandwidth": degraded_bandwidth,
    "flash-crowd": flash_crowd,
    "overload": overload,
    "flash_crowd": vod_flash_crowd,
    "diurnal_drift": vod_diurnal_drift,
    "long_tail": vod_long_tail,
}


def _require_known(name: str) -> Callable[..., RuntimeConfig]:
    """Look up a scenario factory; one canonical unknown-name error.

    Validation is delegated to
    :func:`repro.service.scenarios.require_known_scenario` so the
    error text has a single home across the CLI and both registries.
    """
    _service_scenarios().require_known_scenario(name)
    return SCENARIOS[name]


def build_scenario(name: str, *, seed: int = 0,
                   horizon: float | None = None) -> RuntimeConfig:
    """Instantiate a named scenario's configuration."""
    factory = _require_known(name)
    if horizon is None:
        return factory(seed=seed)
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be > 0, got {horizon!r}")
    return factory(seed=seed, horizon=horizon)


def run_scenario(name: str, *, seed: int = 0,
                 horizon: float | None = None) -> RuntimeResult:
    """Build and run a named scenario."""
    return run_runtime(build_scenario(name, seed=seed, horizon=horizon))


def _run_scenario_item(
        item: tuple[str, int, float | None]) -> RuntimeResult:
    """Worker: one named scenario (picklable; seed rides in the item)."""
    name, seed, horizon = item
    return run_scenario(name, seed=seed, horizon=horizon)


def run_scenario_batch(names: list[str] | None = None, *, seed: int = 0,
                       horizon: float | None = None,
                       jobs: int = 1) -> dict[str, RuntimeResult]:
    """Run several scenarios (default: all), optionally in parallel.

    Each scenario builds its own private planner and seeded generators
    from ``(name, seed, horizon)``, so fanning out over processes via
    :func:`repro.perf.parallel.sweep_map` returns exactly the results a
    serial loop would.
    """
    from repro.perf.parallel import sweep_map

    selected = list(SCENARIOS) if names is None else list(names)
    for name in selected:
        _require_known(name)
    items = [(name, seed, horizon) for name in selected]
    results = sweep_map(_run_scenario_item, items, jobs=jobs)
    return dict(zip(selected, results))
